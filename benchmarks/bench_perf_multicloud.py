"""Sharded multi-cloud throughput: qps vs. server count.

PR 1's benchmark (``bench_perf_query_throughput.py``) measured how fast *one*
:class:`~repro.cloud.server.CloudServer` serves a binned workload under each
sensitive-side search path.  This benchmark measures the fleet dimension the
sharded execution subsystem adds: the same workload executed end-to-end
(owner rewrite → cloud search → owner decrypt/merge) through
``execute_workload(..., placement="sharded")`` against
:class:`~repro.cloud.multi_cloud.MultiCloud` fleets of growing size, with the
single-server batched path as the 1-server baseline.

Two configurations bound the design space:

* ``sharded-linear`` — encrypted indexes off, so every sensitive request is a
  linear scan of the serving member's slice.  Sharding splits storage
  bin-by-bin across members, so each member scans ~1/k of the relation: the
  classic horizontal-scaling contraction, visible in wall clock *and* in the
  hardware-independent rows-scanned counter.
* ``sharded-tag-index`` — encrypted indexes on, so per-query cloud work is a
  few index probes; there is nothing left for a fleet to divide, and the
  thread-pool coordination overhead makes the sharded path *slower* than one
  server (≈0.85x in the committed trajectory).  It is included so the
  trajectory records both regimes honestly: shard when per-query cloud work
  is the bottleneck, keep one server (or more attributes per fleet) when an
  index already erased it.

Methodology: each fleet size serves the workload once to warm the owner's
per-bin token and plaintext caches, then the best of a few repeat runs is
reported — steady-state throughput, the regime a long-running deployment
lives in.  The clouds' cross-batch retrieval interning is flushed before
every pass (see ``_flush_cloud_retrievals``): a warm retrieval cache would
turn every repeat into pure fixed cost — no scans, no trial decryption —
and this benchmark exists to measure the *compute* regime a fleet divides;
within a pass each distinct request is still computed once, the original
per-batch dedup semantics.  The dataset uses one tuple per value, which
maximises the bin count at a given relation size and therefore the fraction
of per-query cost that is cloud-side scanning (the part a fleet divides);
owner-side per-query costs (merging, trace building) are identical across
fleet sizes and are deliberately left inside the timed region, so the
reported speedups are end-to-end, not cloud-only.

A third dimension — ``process_members`` — measures the GIL escape: the same
sharded workload under SSE (trial decryption, the CPU-bound scheme) with
``member_backend="process"`` versus threads versus one server.  Every run
records the deterministic division of trial-decryption work
(``max_member_rows_scanned_per_query``) alongside wall clock, plus the
``usable_cpus`` the numbers were measured under — on a single-core
container the workers are time-sliced and wall clock cannot reflect the
(still real, still asserted) work split.

A second dimension — ``fault_tolerance`` — measures what replication and
failover cost: the same sharded workload at 4 servers with
``replication_factor=2``, healthy versus with one member killed (excluded
from routing, its bins served by replicas).  Replication doubles each
member's slice, so the scan-bound healthy qps sits below the unreplicated
figure — that storage/throughput trade is the price of surviving a member
loss; the killed run then shows the residual failover overhead (one fewer
member, same per-request slice sizes).  Results must stay bit-identical
across both runs — degraded execution is required to be unobservable.

A fourth dimension — ``elastic_fleet`` — measures what membership *churn*
costs: one fleet carried through the full lifecycle (healthy → one member
killed → redundancy re-replicated onto the survivors → a fresh member
joined), with steady-state qps measured at every stage and the slice
volumes each transition moved recorded alongside.  Results must stay
bit-identical across all four stages, and redundancy must be back at
``replication_factor`` copies per bin once the cycle completes.

Run directly to sweep server counts at 100k rows and fold the
``multicloud_scaling`` and ``fault_tolerance`` sections into the committed
``BENCH_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_perf_multicloud.py

The full-scale acceptance tests (≥1.5x qps at 4 servers vs. 1 at 100k rows;
killed-member qps ≥ 0.4x healthy) are marked ``slowperf``; the
fault-tolerance smoke variant is seconds-fast but — like every test in this
directory — only collected when the file is named explicitly (pytest only
auto-collects ``test_*.py``; the default-run failover coverage lives in
``tests/test_fault_tolerance.py``).  Run the full set::

    PYTHONPATH=src python -m pytest -m perf -q benchmarks/bench_perf_multicloud.py
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

if __package__ in (None, ""):  # direct script execution: mirror conftest.py
    _ROOT = Path(__file__).resolve().parent.parent
    for _path in (str(_ROOT), str(_ROOT / "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

import pytest

from repro.cloud.multi_cloud import MultiCloud
from repro.cloud.process_member import process_backend_available
from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.crypto.primitives import SecretKey

from benchmarks.helpers import print_table


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity beats cpu_count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

DEFAULT_SIZES: Tuple[int, ...] = (100_000,)
DEFAULT_SERVER_COUNTS: Tuple[int, ...] = (1, 2, 4)
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def _build_dataset(size: int, seed: int):
    """``size`` rows with one tuple per value (see the methodology note)."""
    from repro.workloads.generator import generate_partitioned_dataset

    return generate_partitioned_dataset(
        num_values=size,
        sensitivity_fraction=0.5,
        association_fraction=0.6,
        tuples_per_value=1,
        seed=seed,
    )

#: name -> encrypted indexes enabled (scheme is deterministic for both; the
#: linear config is the scan-bound regime where sharding's work split shows).
CONFIGS: Dict[str, bool] = {
    "sharded-linear": False,
    "sharded-tag-index": True,
}

QUERY_BUDGET = {"sharded-linear": 240, "sharded-tag-index": 600}


def _build_engine(
    dataset,
    server_count: int,
    use_encrypted_indexes: bool,
    replication_factor: int = 1,
):
    """An engine over ``dataset``, sharded across ``server_count`` members.

    ``server_count == 1`` is the baseline: no fleet, single-server batched
    execution (the fastest one-server path PR 1 produced).
    """
    engine = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=DeterministicScheme(SecretKey.from_passphrase("bench-multicloud")),
        cloud=CloudServer(use_encrypted_indexes=use_encrypted_indexes),
        rng=random.Random(13),
        multi_cloud=(
            MultiCloud(server_count, use_encrypted_indexes=use_encrypted_indexes)
            if server_count >= 2
            else None
        ),
        replication_factor=replication_factor,
    )
    return engine.setup()


def _scanned_rows(engine, server_count: int) -> int:
    if server_count == 1:
        return engine.cloud.stats.sensitive_rows_scanned
    return engine.multi_cloud.aggregate_stat("sensitive_rows_scanned")


def _flush_cloud_retrievals(engine, server_count: int) -> None:
    """Drop the clouds' interned retrievals (owner-side caches stay warm).

    The engine's cross-batch retrieval interning (PR 5) would otherwise turn
    every measured repeat of the workload into pure fixed cost — no scans,
    no trial decryption — and the scaling benchmarks exist to measure the
    *compute* regime a fleet divides.  Flushing between passes restores the
    original methodology exactly: within a pass each distinct request is
    computed once (the old per-batch dedup), across passes it is computed
    again.  Owner caches (tokens, interned requests, plaintexts) stay warm,
    as before.
    """
    engine.cloud.invalidate_retrievals()
    if server_count > 1:
        for server in engine.multi_cloud.servers:
            server.invalidate_retrievals()


def _measure(
    engine, server_count: int, workload, warmup: int = 1, repeats: int = 3
) -> Tuple[Dict, list]:
    """Steady-state end-to-end workload execution (warm-up, then best-of-N).

    Rows-scanned counters are taken as the delta across one measured run, so
    they reflect per-workload work regardless of how many runs preceded it.
    """
    placement = "batched" if server_count == 1 else "sharded"
    for _ in range(warmup):
        _flush_cloud_retrievals(engine, server_count)
        engine.execute_workload_with_rows(workload, placement=placement)
    best = float("inf")
    outcome = None
    scanned = 0
    for _ in range(repeats):
        _flush_cloud_retrievals(engine, server_count)
        scanned_before = _scanned_rows(engine, server_count)
        started = time.perf_counter()
        outcome = engine.execute_workload_with_rows(workload, placement=placement)
        elapsed = time.perf_counter() - started
        scanned = _scanned_rows(engine, server_count) - scanned_before
        best = min(best, elapsed)
    result_rids = [sorted(row.rid for row in rows) for rows, _trace in outcome]
    if server_count == 1:
        stored = engine.cloud.encrypted_row_count
        max_stored = stored
    else:
        fleet = engine.multi_cloud
        stored = sum(server.encrypted_row_count for server in fleet.servers)
        max_stored = max(server.encrypted_row_count for server in fleet.servers)
    queries = len(workload)
    return {
        "servers": server_count,
        "placement": placement,
        "queries": queries,
        "elapsed_seconds": best,
        "queries_per_second": queries / best if best > 0 else float("inf"),
        "rows_scanned_per_query": scanned / queries if queries else 0.0,
        "encrypted_rows_stored": stored,
        "max_rows_stored_per_server": max_stored,
    }, result_rids


def run_fleet_comparison(
    size: int,
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS,
    queries: int = 240,
    use_encrypted_indexes: bool = False,
    seed: int = 29,
    warmup: int = 1,
    repeats: int = 3,
) -> Dict:
    """One size × one config across fleet sizes, with result-parity checking.

    The same workload is replayed against every fleet size; the returned
    ``result_rids_match`` records whether every fleet produced bit-identical
    per-query result sets (it must — sharding is unobservable to the owner).
    """
    dataset = _build_dataset(size, seed)
    rng = random.Random(seed + 1)
    workload = [rng.choice(dataset.all_values) for _ in range(queries)]
    runs: Dict[str, Dict] = {}
    reference_rids = None
    rids_match = True
    for server_count in server_counts:
        engine = _build_engine(dataset, server_count, use_encrypted_indexes)
        measured, result_rids = _measure(
            engine, server_count, workload, warmup=warmup, repeats=repeats
        )
        if reference_rids is None:
            reference_rids = result_rids
        else:
            rids_match = rids_match and (result_rids == reference_rids)
        runs[str(server_count)] = measured
    # "vs single" means the 1-server run when present; otherwise the
    # smallest measured fleet (the metric is then relative, not absolute).
    baseline_key = "1" if "1" in runs else str(min(int(count) for count in runs))
    baseline_qps = runs[baseline_key]["queries_per_second"]
    for measured in runs.values():
        measured["speedup_vs_single"] = (
            measured["queries_per_second"] / baseline_qps if baseline_qps else float("inf")
        )
    return {
        "relation_rows": size,
        "queries": queries,
        "use_encrypted_indexes": use_encrypted_indexes,
        "runs": runs,
        "result_rids_match": rids_match,
    }


def run_fault_tolerance_comparison(
    size: int,
    server_count: int = 4,
    replication_factor: int = 2,
    queries: int = 240,
    use_encrypted_indexes: bool = False,
    seed: int = 29,
    warmup: int = 1,
    repeats: int = 3,
    victim: int = 0,
) -> Dict:
    """Failover overhead: healthy vs. one-member-killed qps on a replicated fleet.

    Both runs use identical engines (``server_count`` members,
    ``replication_factor``-way replicated bin slices); the degraded run marks
    ``victim`` failed *before* measuring, so it reports the steady state a
    deployment settles into after a member loss — every bin the victim owned
    is served by a live replica, with bit-identical results (checked).
    """
    dataset = _build_dataset(size, seed)
    rng = random.Random(seed + 1)
    workload = [rng.choice(dataset.all_values) for _ in range(queries)]
    runs: Dict[str, Dict] = {}
    reference_rids = None
    rids_match = True
    single_copy_rows = 0
    for label, kill in (("healthy", False), ("one-member-killed", True)):
        engine = _build_engine(
            dataset, server_count, use_encrypted_indexes, replication_factor
        )
        # the reference server holds exactly one copy of the encrypted
        # relation — the baseline the fleet's k-way storage is measured from
        single_copy_rows = engine.cloud.encrypted_row_count
        if kill:
            engine.multi_cloud.failed_members.add(victim)
        measured, result_rids = _measure(
            engine, server_count, workload, warmup=warmup, repeats=repeats
        )
        measured["members_live"] = server_count - (1 if kill else 0)
        if reference_rids is None:
            reference_rids = result_rids
        else:
            rids_match = rids_match and (result_rids == reference_rids)
        runs[label] = measured
    healthy_qps = runs["healthy"]["queries_per_second"]
    degraded_qps = runs["one-member-killed"]["queries_per_second"]
    return {
        "relation_rows": size,
        "queries": queries,
        "server_count": server_count,
        "replication_factor": replication_factor,
        "use_encrypted_indexes": use_encrypted_indexes,
        "killed_member": victim,
        "single_copy_rows": single_copy_rows,
        "runs": runs,
        "result_rids_match": rids_match,
        # qps retained with one member down; 1.0 would mean free failover
        "degraded_qps_fraction": (
            degraded_qps / healthy_qps if healthy_qps else float("inf")
        ),
    }


def run_fault_tolerance_suite(
    sizes: Sequence[int] = DEFAULT_SIZES,
    out_path: Optional[Path] = OUTPUT_PATH,
    seed: int = 29,
) -> Dict:
    """Sweep sizes for the failover comparison; fold into the trajectory."""
    section: Dict = {
        "benchmark": "fault_tolerance",
        "server_count": 4,
        "replication_factor": 2,
        "sizes": [
            run_fault_tolerance_comparison(size, seed=seed) for size in sizes
        ],
    }
    if out_path is not None:
        trajectory = (
            json.loads(out_path.read_text()) if out_path.exists() else {}
        )
        trajectory["fault_tolerance"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


def print_fault_tolerance(section: Dict) -> None:
    for comparison in section["sizes"]:
        rows = []
        for label in ("healthy", "one-member-killed"):
            measured = comparison["runs"][label]
            rows.append(
                (
                    label,
                    measured["members_live"],
                    f"{measured['queries_per_second']:.1f}",
                    f"{measured['rows_scanned_per_query']:.1f}",
                    f"{measured['max_rows_stored_per_server']}",
                )
            )
        parity = "ok" if comparison["result_rids_match"] else "MISMATCH"
        print_table(
            f"fault tolerance @ {comparison['relation_rows']} rows, "
            f"{comparison['server_count']} servers, "
            f"k={comparison['replication_factor']} "
            f"(result parity: {parity}, degraded qps fraction: "
            f"{comparison['degraded_qps_fraction']:.2f})",
            ["run", "live members", "qps", "rows scanned/query", "max rows/server"],
            rows,
        )


def run_elastic_fleet_comparison(
    size: int,
    server_count: int = 5,
    replication_factor: int = 2,
    queries: int = 240,
    use_encrypted_indexes: bool = False,
    seed: int = 29,
    warmup: int = 1,
    repeats: int = 2,
    victim: int = 0,
) -> Dict:
    """Throughput through a kill → re-replicate → join membership cycle.

    Unlike ``run_fault_tolerance_comparison`` (which builds a fresh fleet per
    run), this carries *one* fleet through the whole lifecycle the elastic
    subsystem exists for, measuring steady-state qps at every stage:

    1. ``healthy`` — the ``server_count``-member baseline;
    2. ``member-killed`` — ``victim`` excluded, replicas serving its bins;
    3. ``re-replicated`` — the loss confirmed and every bin back at
       ``replication_factor`` copies on the survivors;
    4. ``member-joined`` — a fresh member admitted and slices rebalanced
       onto it.

    Results must stay bit-identical across all four stages (checked), and
    the migration volumes each transition moved are recorded so the
    throughput numbers can be read against the repair work they bought.
    """
    dataset = _build_dataset(size, seed)
    rng = random.Random(seed + 1)
    workload = [rng.choice(dataset.all_values) for _ in range(queries)]
    engine = _build_engine(
        dataset, server_count, use_encrypted_indexes, replication_factor
    )
    fleet = engine.multi_cloud
    manager = engine.fleet_lifecycle()
    runs: Dict[str, Dict] = {}
    reference_rids = None
    rids_match = True

    def measure_stage(label: str) -> None:
        nonlocal reference_rids, rids_match
        measured, result_rids = _measure(
            engine, len(fleet), workload, warmup=warmup, repeats=repeats
        )
        live = sorted(fleet.live_members - fleet.failed_members)
        measured["members_live"] = len(live)
        # storage accounting over the members actually serving (a killed or
        # departed member's rows are no longer part of the fleet's capacity)
        measured["encrypted_rows_stored"] = sum(
            fleet[index].encrypted_row_count for index in live
        )
        measured["max_rows_stored_per_server"] = max(
            fleet[index].encrypted_row_count for index in live
        )
        if reference_rids is None:
            reference_rids = result_rids
        else:
            rids_match = rids_match and (result_rids == reference_rids)
        runs[label] = measured

    measure_stage("healthy")
    fleet.failed_members.add(victim)
    measure_stage("member-killed")
    restore_report = manager.restore_redundancy()
    measure_stage("re-replicated")
    joined, join_report = manager.add_member()
    measure_stage("member-joined")

    health = manager.replication_health()
    healthy_qps = runs["healthy"]["queries_per_second"]
    for measured in runs.values():
        measured["qps_fraction_of_healthy"] = (
            measured["queries_per_second"] / healthy_qps
            if healthy_qps
            else float("inf")
        )
    return {
        "relation_rows": size,
        "queries": queries,
        "server_count": server_count,
        "replication_factor": replication_factor,
        "use_encrypted_indexes": use_encrypted_indexes,
        "killed_member": victim,
        "joined_member": joined,
        "rows_rereplicated": restore_report.rows_copied,
        "bins_rereplicated": restore_report.bins_copied,
        "rows_rebalanced_on_join": join_report.rows_copied,
        "bins_rebalanced_on_join": join_report.bins_copied,
        "redundancy_restored": bool(health)
        and set(health.values()) == {replication_factor},
        "non_collusion_pairs_proved": manager.prove_non_collusion(),
        "runs": runs,
        "result_rids_match": rids_match,
    }


def run_elastic_fleet_suite(
    sizes: Sequence[int] = DEFAULT_SIZES,
    out_path: Optional[Path] = OUTPUT_PATH,
    seed: int = 29,
) -> Dict:
    """Sweep sizes for the churn-cycle comparison; fold into the trajectory."""
    section: Dict = {
        "benchmark": "elastic_fleet",
        "server_count": 5,
        "replication_factor": 2,
        "sizes": [run_elastic_fleet_comparison(size, seed=seed) for size in sizes],
    }
    if out_path is not None:
        trajectory = json.loads(out_path.read_text()) if out_path.exists() else {}
        trajectory["elastic_fleet"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


def print_elastic_fleet(section: Dict) -> None:
    for comparison in section["sizes"]:
        rows = []
        for label in ("healthy", "member-killed", "re-replicated", "member-joined"):
            measured = comparison["runs"][label]
            rows.append(
                (
                    label,
                    measured["members_live"],
                    f"{measured['queries_per_second']:.1f}",
                    f"{measured['qps_fraction_of_healthy']:.2f}x",
                    f"{measured['max_rows_stored_per_server']}",
                )
            )
        parity = "ok" if comparison["result_rids_match"] else "MISMATCH"
        redundancy = "restored" if comparison["redundancy_restored"] else "DEGRADED"
        print_table(
            f"elastic fleet @ {comparison['relation_rows']} rows, "
            f"{comparison['server_count']} servers, "
            f"k={comparison['replication_factor']} "
            f"(result parity: {parity}, redundancy: {redundancy}, "
            f"{comparison['rows_rereplicated']} rows re-replicated, "
            f"{comparison['rows_rebalanced_on_join']} rows rebalanced on join)",
            ["stage", "live members", "qps", "vs healthy", "max rows/server"],
            rows,
        )


def run_process_member_comparison(
    size: int,
    server_count: int = 4,
    queries: int = 120,
    seed: int = 29,
    warmup: int = 1,
    repeats: int = 2,
) -> Dict:
    """SSE trial decryption: 1 server vs. thread members vs. process members.

    SSE is the scheme the GIL hurts: the cloud must PRF-test every (row,
    token) pair of the addressed bin, pure Python+hashlib CPU work.  The
    thread backend divides the *rows* across members but time-slices the
    compute on one core; the process backend runs the same division on
    actual cores.  Both fleets must return bit-identical results (checked).

    Alongside wall clock the comparison records the deterministic driver:
    ``max_member_rows_scanned_per_query`` — the largest per-member
    trial-decryption load.  The fleet divides work whenever that figure is
    well below the single-server ``rows_scanned_per_query``; whether the
    division shows up in qps depends on ``usable_cpus`` (a single-core
    container serialises the workers however the work is split, so the
    committed numbers carry the cpu count they were measured on).
    """
    dataset = _build_dataset(size, seed)
    rng = random.Random(seed + 1)
    workload = [rng.choice(dataset.all_values) for _ in range(queries)]
    configs = [("1-server", 1, None), ("4-thread-members", server_count, "thread")]
    if process_backend_available():
        configs.append(("4-process-members", server_count, "process"))
    runs: Dict[str, Dict] = {}
    reference_rids = None
    rids_match = True
    for label, count, backend in configs:
        engine = QueryBinningEngine(
            partition=dataset.partition,
            attribute=dataset.attribute,
            scheme=SSEScheme(SecretKey.from_passphrase("bench-multicloud")),
            cloud=CloudServer(),
            rng=random.Random(13),
            multi_cloud=(
                MultiCloud(count, member_backend=backend) if count >= 2 else None
            ),
        )
        engine.setup()
        measured, result_rids = _measure(
            engine, count, workload, warmup=warmup, repeats=repeats
        )
        measured["member_backend"] = backend or "none"
        if count >= 2:
            per_member = [
                server.stats.sensitive_rows_scanned
                for server in engine.multi_cloud.servers
            ]
            # cumulative across warmup+repeats; scale to one workload pass
            passes = warmup + repeats
            measured["max_member_rows_scanned_per_query"] = max(per_member) / (
                passes * queries
            )
            engine.multi_cloud.close()
        else:
            measured["max_member_rows_scanned_per_query"] = measured[
                "rows_scanned_per_query"
            ]
        if reference_rids is None:
            reference_rids = result_rids
        else:
            rids_match = rids_match and (result_rids == reference_rids)
        runs[label] = measured
    baseline_qps = runs["1-server"]["queries_per_second"]
    for measured in runs.values():
        measured["speedup_vs_single"] = (
            measured["queries_per_second"] / baseline_qps
            if baseline_qps
            else float("inf")
        )
    return {
        "relation_rows": size,
        "queries": queries,
        "scheme": "sse",
        "server_count": server_count,
        "usable_cpus": _usable_cpus(),
        "runs": runs,
        "result_rids_match": rids_match,
    }


def run_process_member_suite(
    sizes: Sequence[int] = (20_000,),
    out_path: Optional[Path] = OUTPUT_PATH,
    seed: int = 29,
) -> Dict:
    """Sweep sizes for the process-member comparison; fold into the trajectory."""
    section: Dict = {
        "benchmark": "process_members",
        "scheme": "sse",
        "server_count": 4,
        "usable_cpus": _usable_cpus(),
        "note": (
            "wall-clock scaling needs >= server_count usable CPUs; with fewer, "
            "workers time-slice one core and qps reflects IPC overhead, while "
            "the division of trial-decryption work is still proven by "
            "max_member_rows_scanned_per_query (~1/server_count of the "
            "single-server per-query load)"
        ),
        "sizes": [run_process_member_comparison(size, seed=seed) for size in sizes],
    }
    if out_path is not None:
        trajectory = json.loads(out_path.read_text()) if out_path.exists() else {}
        trajectory["process_members"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


def print_process_members(section: Dict) -> None:
    for comparison in section["sizes"]:
        rows = []
        for label, measured in comparison["runs"].items():
            rows.append(
                (
                    label,
                    f"{measured['queries_per_second']:.1f}",
                    f"{measured['rows_scanned_per_query']:.1f}",
                    f"{measured['max_member_rows_scanned_per_query']:.1f}",
                    f"{measured['speedup_vs_single']:.2f}x",
                )
            )
        parity = "ok" if comparison["result_rids_match"] else "MISMATCH"
        print_table(
            f"process members (SSE) @ {comparison['relation_rows']} rows, "
            f"{comparison['usable_cpus']} usable cpus "
            f"(result parity: {parity})",
            [
                "config",
                "qps",
                "rows trialed/query",
                "max rows trialed/query/member",
                "vs 1 server",
            ],
            rows,
        )


def run_multicloud_suite(
    sizes: Sequence[int] = DEFAULT_SIZES,
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS,
    query_budget: Optional[Dict[str, int]] = None,
    out_path: Optional[Path] = OUTPUT_PATH,
    seed: int = 29,
) -> Dict:
    """Sweep sizes × configs × fleet sizes; fold results into the trajectory.

    The committed ``BENCH_throughput.json`` keeps PR 1's single-server curves
    untouched and gains (or refreshes) a ``multicloud_scaling`` section — one
    trajectory file tells the whole throughput story.
    """
    budgets = dict(QUERY_BUDGET)
    if query_budget:
        budgets.update(query_budget)
    section: Dict = {
        "benchmark": "multicloud_scaling",
        "server_counts": list(server_counts),
        "configs": list(CONFIGS),
        "sizes": [],
    }
    for size in sizes:
        entry: Dict = {"relation_rows": size, "results": {}}
        for name, use_encrypted_indexes in CONFIGS.items():
            entry["results"][name] = run_fleet_comparison(
                size,
                server_counts=server_counts,
                queries=budgets[name],
                use_encrypted_indexes=use_encrypted_indexes,
                seed=seed,
            )
        section["sizes"].append(entry)
    if out_path is not None:
        trajectory = (
            json.loads(out_path.read_text()) if out_path.exists() else {}
        )
        trajectory["multicloud_scaling"] = section
        out_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return section


def print_results(section: Dict) -> None:
    for entry in section["sizes"]:
        for name, comparison in entry["results"].items():
            rows = []
            for count in sorted(comparison["runs"], key=int):
                measured = comparison["runs"][count]
                rows.append(
                    (
                        count,
                        measured["queries"],
                        f"{measured['queries_per_second']:.1f}",
                        f"{measured['rows_scanned_per_query']:.1f}",
                        f"{measured['max_rows_stored_per_server']}",
                        f"{measured['speedup_vs_single']:.2f}x",
                    )
                )
            parity = "ok" if comparison["result_rids_match"] else "MISMATCH"
            print_table(
                f"{name} @ {entry['relation_rows']} rows (result parity: {parity})",
                [
                    "servers",
                    "queries",
                    "qps",
                    "rows scanned/query",
                    "max rows/server",
                    "vs 1 server",
                ],
                rows,
            )


@pytest.mark.perf
@pytest.mark.faults
def test_failover_parity_smoke():
    """Fast default-run check: a killed member is invisible in the results
    and the degraded fleet still serves at a sane fraction of healthy qps."""
    comparison = run_fault_tolerance_comparison(
        2_000, queries=60, warmup=1, repeats=1
    )
    assert comparison["result_rids_match"] is True
    healthy = comparison["runs"]["healthy"]
    degraded = comparison["runs"]["one-member-killed"]
    assert degraded["queries_per_second"] > 0
    # replication really happened: the fleet stores exactly k copies of the
    # encrypted relation (k=2), not the single sharded copy of an
    # unreplicated fleet
    assert healthy["encrypted_rows_stored"] == (
        comparison["replication_factor"] * comparison["single_copy_rows"]
    )
    assert comparison["degraded_qps_fraction"] > 0.2


@pytest.mark.perf
@pytest.mark.slowperf
def test_failover_overhead_acceptance():
    """The acceptance bar for degraded mode at full scale: losing 1 of 4
    members keeps ≥0.4x of healthy steady-state qps (3 live members serving
    identical per-request slices), with bit-identical results."""
    comparison = run_fault_tolerance_comparison(100_000, queries=160)
    print_fault_tolerance({"sizes": [comparison]})
    assert comparison["result_rids_match"] is True
    assert comparison["degraded_qps_fraction"] >= 0.4
    # the degraded run scans the same per-query slice (replicas are exact
    # copies); only the loss of a member's parallelism may cost throughput
    healthy = comparison["runs"]["healthy"]
    degraded = comparison["runs"]["one-member-killed"]
    assert degraded["rows_scanned_per_query"] == pytest.approx(
        healthy["rows_scanned_per_query"], rel=0.01
    )


@pytest.mark.perf
@pytest.mark.faults
@pytest.mark.chaos
def test_elastic_cycle_smoke():
    """Fast check: qps stays sane and results bit-identical through a full
    kill → re-replicate → join cycle, with redundancy back at k after it."""
    comparison = run_elastic_fleet_comparison(
        2_000, queries=60, warmup=1, repeats=1
    )
    assert comparison["result_rids_match"] is True
    assert comparison["redundancy_restored"] is True
    assert comparison["rows_rereplicated"] > 0
    assert comparison["non_collusion_pairs_proved"] > 0
    for stage in ("member-killed", "re-replicated", "member-joined"):
        assert comparison["runs"][stage]["qps_fraction_of_healthy"] > 0.2, stage


@pytest.mark.perf
def test_process_member_parity_smoke():
    """Fast default-run check: process-backed members return bit-identical
    results to threads and the single server, and divide the SSE
    trial-decryption work across members (deterministic counters)."""
    comparison = run_process_member_comparison(
        2_000, queries=40, warmup=1, repeats=1
    )
    assert comparison["result_rids_match"] is True
    single = comparison["runs"]["1-server"]
    assert single["queries_per_second"] > 0
    if "4-process-members" in comparison["runs"]:
        fleet = comparison["runs"]["4-process-members"]
        # the fleet's busiest member trial-decrypts well under the whole
        # relation's per-query load: the work really is divided
        assert fleet["max_member_rows_scanned_per_query"] < (
            0.6 * single["rows_scanned_per_query"]
        )


@pytest.mark.perf
@pytest.mark.slowperf
def test_process_member_scaling_acceptance():
    """The acceptance bar for the GIL escape: ≥1.5x SSE qps at 4
    process-backed members vs. 1 server.

    Parallel speedup needs parallel hardware: on a container restricted to
    fewer than 4 usable CPUs the workers are time-sliced onto the same
    cores and wall clock cannot reflect the (still measured, still asserted)
    work division, so the wall-clock bar is skipped there — the committed
    ``BENCH_throughput.json`` records ``usable_cpus`` alongside the numbers.
    """
    comparison = run_process_member_comparison(20_000, queries=120)
    print_process_members({"sizes": [comparison]})
    assert comparison["result_rids_match"] is True
    single = comparison["runs"]["1-server"]
    fleet = comparison["runs"].get("4-process-members")
    assert fleet is not None, "process backend unavailable on this platform"
    assert fleet["max_member_rows_scanned_per_query"] < (
        0.6 * single["rows_scanned_per_query"]
    )
    if comparison["usable_cpus"] < 4:
        pytest.skip(
            f"only {comparison['usable_cpus']} usable CPUs: process members "
            "cannot run in parallel here, wall-clock bar not meaningful"
        )
    assert fleet["speedup_vs_single"] >= 1.5


@pytest.mark.perf
@pytest.mark.slowperf
def test_multicloud_scaling_acceptance():
    """The acceptance bar: ≥1.5x qps at 4 servers vs. 1 at 100k rows.

    Runs the scan-bound configuration, where sharding's per-member work split
    must translate into wall-clock throughput, and requires bit-identical
    results across fleet sizes while it is at it.
    """
    comparison = run_fleet_comparison(
        100_000, server_counts=(1, 4), queries=160, use_encrypted_indexes=False
    )
    single = comparison["runs"]["1"]
    sharded = comparison["runs"]["4"]
    print_results(
        {"sizes": [{"relation_rows": 100_000, "results": {"sharded-linear": comparison}}]}
    )
    assert comparison["result_rids_match"] is True
    assert sharded["speedup_vs_single"] >= 1.5
    # the deterministic driver behind the wall-clock number
    assert sharded["rows_scanned_per_query"] < single["rows_scanned_per_query"] / 2
    assert sharded["max_rows_stored_per_server"] < single["encrypted_rows_stored"] / 2


if __name__ == "__main__":
    suite_section = run_multicloud_suite()
    print_results(suite_section)
    fault_section = run_fault_tolerance_suite()
    print_fault_tolerance(fault_section)
    elastic_section = run_elastic_fleet_suite()
    print_elastic_fleet(elastic_section)
    process_section = run_process_member_suite()
    print_process_members(process_section)
    print(f"\ntrajectory written to {OUTPUT_PATH}")
