"""Table VI — QB mixed with Opaque (SGX) and Jana (MPC) at different
sensitivity levels.

The paper reports:

=================  ====  ====  ====  ====  ====
Technique            1%    5%   20%   40%   60%
=================  ====  ====  ====  ====  ====
SGX-based Opaque     11    15    26    42    59
MPC-based Jana       22    80   270   505   749
=================  ====  ====  ====  ====  ====

The real systems require SGX hardware and an MPC deployment, so the harness
uses the cost-calibrated simulators (see DESIGN.md): the per-tuple secure-scan
costs are derived from the paper's own full-scan measurements (89 s / 6 M
tuples for Opaque, 1051 s / 1 M tuples for Jana).  The shape to reproduce:
times grow roughly linearly with sensitivity, stay below the full-encryption
scan, and Jana is an order of magnitude slower than Opaque.
"""

import pytest

from repro.baselines.jana_sim import JanaSimulator
from repro.baselines.opaque_sim import OpaqueSimulator

from benchmarks.helpers import print_table

SENSITIVITIES = (0.01, 0.05, 0.2, 0.4, 0.6)

#: The paper's measured values, used to compare shapes (not to assert equality).
PAPER_OPAQUE = {0.01: 11, 0.05: 15, 0.2: 26, 0.4: 42, 0.6: 59}
PAPER_JANA = {0.01: 22, 0.05: 80, 0.2: 270, 0.4: 505, 0.6: 749}


def compute_table():
    opaque = OpaqueSimulator().table6_row(SENSITIVITIES)
    jana = JanaSimulator().table6_row(SENSITIVITIES)
    return opaque, jana


def test_table6_qb_with_opaque_and_jana(benchmark):
    opaque, jana = benchmark(compute_table)

    rows = []
    for name, ours, paper in (
        ("SGX-based Opaque + QB", opaque, PAPER_OPAQUE),
        ("MPC-based Jana + QB", jana, PAPER_JANA),
    ):
        rows.append(
            tuple(
                [name]
                + [f"{ours[alpha]:.0f} ({paper[alpha]})" for alpha in SENSITIVITIES]
            )
        )
    print_table(
        "Table VI: seconds per selection, simulated (paper's measurement)",
        ["technique"] + [f"{alpha:.0%}" for alpha in SENSITIVITIES],
        rows,
    )
    print(
        "  full-encryption scans: Opaque="
        f"{OpaqueSimulator().full_encryption_seconds():.0f}s, "
        f"Jana={JanaSimulator().full_encryption_seconds():.0f}s"
    )

    for table in (opaque, jana):
        times = [table[alpha] for alpha in SENSITIVITIES]
        assert times == sorted(times)  # monotone in sensitivity
    # QB always beats running the secure engine over the whole dataset.
    assert opaque[0.6] < OpaqueSimulator().full_encryption_seconds()
    assert jana[0.6] < JanaSimulator().full_encryption_seconds()
    # Jana is markedly slower than Opaque at every sensitivity.
    for alpha in SENSITIVITIES:
        assert jana[alpha] > opaque[alpha]
    # The simulated values track the paper's within a factor of two.
    for alpha in SENSITIVITIES:
        assert opaque[alpha] == pytest.approx(PAPER_OPAQUE[alpha], rel=1.0)
        assert jana[alpha] == pytest.approx(PAPER_JANA[alpha], rel=1.0)
