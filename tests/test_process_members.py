"""Process-backed fleet members: parity, fault tolerance, and lifecycle.

``MultiCloud(member_backend="process")`` must be *observationally invisible*:
identical results, traces, per-query view content, and aggregated statistics
versus the thread backend (and therefore versus the single reference server)
for every scheme — the process boundary may move compute, never information.
The fault-injection harness must hold unchanged too, including for a member
whose worker process genuinely dies.
"""

from __future__ import annotations

import pytest

from repro.cloud.multi_cloud import MultiCloud
from repro.cloud.process_member import process_backend_available
from repro.cloud.server import CloudServer
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.exceptions import CloudError, ProcessMemberError

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}

pytestmark = [
    pytest.mark.multicloud,
    pytest.mark.skipif(
        not process_backend_available(),
        reason="process-backed members need the fork start method",
    ),
]


class TestProcessBackendParity:
    """The full parity-harness contract, with process members standing in."""

    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    def test_process_backend_matches_sequential_reference(
        self, parity_harness, scheme_name
    ):
        """Results, traces, split views, and statistics all match the single
        sequential reference server — the same bar the thread backend meets."""
        harness = parity_harness(SCHEMES[scheme_name], member_backend="process")
        workload = harness.workload()
        sequential = harness.run("sequential", workload)
        sharded = harness.run("sharded", workload)
        runs = {"sequential": sequential, "sharded": sharded}
        harness.assert_identical_results(runs)
        harness.assert_identical_traces(runs)
        harness.assert_sharded_view_parity(sequential, sharded, workload)
        harness.assert_sharded_statistics_parity(sequential, sharded)

    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    def test_process_backend_matches_thread_backend(
        self, parity_harness, scheme_name
    ):
        """Per-member observations are bit-identical across backends: same
        view content in the same order on the same members, same statistics,
        same network charges."""
        thread_harness = parity_harness(SCHEMES[scheme_name])
        process_harness = parity_harness(
            SCHEMES[scheme_name], member_backend="process"
        )
        workload = thread_harness.workload()
        thread_run = thread_harness.run("sharded", workload)
        process_run = process_harness.run("sharded", workload)

        assert process_run.result_rids == thread_run.result_rids
        assert thread_run.fleet is not None and process_run.fleet is not None
        for thread_member, process_member in zip(
            thread_run.fleet.servers, process_run.fleet.servers
        ):
            assert len(process_member.view_log) == len(thread_member.view_log)
            for theirs, ours in zip(thread_member.view_log, process_member.view_log):
                assert ours.query_id == theirs.query_id
                assert ours.non_sensitive_request == theirs.non_sensitive_request
                assert ours.sensitive_request_size == theirs.sensitive_request_size
                assert ours.returned_sensitive_rids == theirs.returned_sensitive_rids
                assert [row.rid for row in ours.returned_non_sensitive] == [
                    row.rid for row in theirs.returned_non_sensitive
                ]
                assert ours.sensitive_bin_index == theirs.sensitive_bin_index
                assert ours.non_sensitive_bin_index == theirs.non_sensitive_bin_index
            assert process_member.stats == thread_member.stats
            assert process_member.network.total_tuples() == (
                thread_member.network.total_tuples()
            )
            assert len(process_member.network.log) == len(thread_member.network.log)

    def test_inserts_through_proxies(self, parity_harness):
        """The non-batch fleet surface (inserts into a live layout) works
        identically behind the process boundary.  Each backend gets its own
        freshly generated dataset — inserts mutate the partition."""
        from repro.workloads.generator import generate_partitioned_dataset

        runs = {}
        for backend in ("thread", "process"):
            dataset = generate_partitioned_dataset(
                num_values=24,
                sensitivity_fraction=0.5,
                association_fraction=0.6,
                tuples_per_value=3,
                skew_exponent=1.1,
                seed=9,
            )
            harness = parity_harness(
                DeterministicScheme, dataset=dataset, member_backend=backend
            )
            engine = harness.make_engine(sharded=True)
            sensitive_value = engine.partition.sensitive.rows[0][engine.attribute]
            cleartext_value = engine.partition.non_sensitive.rows[0][
                engine.attribute
            ]
            for value, sensitive in (
                (sensitive_value, True),
                (cleartext_value, False),
            ):
                source = (
                    engine.partition.sensitive
                    if sensitive
                    else engine.partition.non_sensitive
                ).rows[0]
                template = dict(source.values)
                template[engine.attribute] = value
                engine.insert(template, sensitive=sensitive)
            outcome = engine.execute_workload_with_rows(
                [sensitive_value, cleartext_value], placement="sharded"
            )
            runs[backend] = [
                sorted(row.rid for row in rows) for rows, _trace in outcome
            ]
        assert runs["process"] == runs["thread"]


class TestProcessBackendFaults:
    """Fault-injection parity and real process-death failover."""

    @pytest.mark.faults
    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    def test_injected_crash_parity(self, fault_harness, scheme_name):
        """The fault-injecting server crashes *inside its worker process*;
        the degraded run must stay bit-identical to the healthy run."""
        harness = fault_harness(SCHEMES[scheme_name], member_backend="process")
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        degraded = harness.run_with_failure(workload, victim, at_offset=load // 2)
        harness.assert_degraded_parity(healthy, degraded)
        assert victim in degraded.fleet.failed_members

    @pytest.mark.faults
    def test_real_worker_death_fails_over(self, fault_harness):
        """Killing the actual member process (SIGTERM, no cooperation from
        the server object) routes its work to replicas: results identical to
        a healthy run, the member excluded, no double-counted observations."""
        harness = fault_harness(DeterministicScheme, member_backend="process")
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, _load = harness.busiest_member(healthy, workload)

        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        assert fleet is not None
        proxy = fleet[victim]
        proxy._process.terminate()
        proxy._process.join(timeout=5.0)

        outcome = engine.execute_workload_with_rows(workload, placement="sharded")
        rids = [sorted(row.rid for row in rows) for rows, _trace in outcome]
        assert rids == healthy.result_rids
        assert victim in fleet.failed_members
        assert len(fleet[victim].view_log) == 0  # the dead member saw nothing
        report = fleet.last_report
        assert report is not None
        assert all(
            placement is None or placement[0] != victim
            for pair in report.placements
            for placement in pair
        )

    @pytest.mark.faults
    def test_unreplicated_fleet_degrades_cleanly_on_worker_death(
        self, parity_harness
    ):
        """Without replicas a dead worker's bins are unservable: the batch
        raises FleetDegradedError instead of hanging or dropping queries."""
        harness = parity_harness(
            DeterministicScheme, member_backend="process", num_shards=3
        )
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        workload = harness.workload()
        # find a victim that actually serves work for this workload
        requests, _slots = engine.build_requests(list(workload))
        per_server, _placements = fleet.split_requests(
            requests, engine.shard_router
        )
        victim = max(range(len(per_server)), key=lambda i: len(per_server[i]))
        proxy = fleet[victim]
        proxy._process.terminate()
        proxy._process.join(timeout=5.0)
        from repro.exceptions import FleetDegradedError

        with pytest.raises(FleetDegradedError):
            engine.execute_workload_with_rows(workload, placement="sharded")


class TestProcessMemberLifecycle:
    def test_close_is_idempotent_and_mirrors_survive(self, parity_harness):
        harness = parity_harness(DeterministicScheme, member_backend="process")
        workload = harness.workload()
        run = harness.run("sharded", workload)
        fleet = run.fleet
        assert fleet is not None
        views_before = [len(server.view_log) for server in fleet.servers]
        stats_before = [server.stats for server in fleet.servers]
        fleet.close()
        fleet.close()  # idempotent
        assert [len(server.view_log) for server in fleet.servers] == views_before
        assert [server.stats for server in fleet.servers] == stats_before
        with pytest.raises(ProcessMemberError):
            fleet[0].build_index(harness.dataset.attribute)

    def test_context_manager_closes_workers(self):
        with MultiCloud(2, member_backend="process") as fleet:
            processes = [server._process for server in fleet.servers]
            assert all(process.is_alive() for process in processes)
        for process in processes:
            process.join(timeout=5.0)
            assert not process.is_alive()

    def test_unknown_backend_rejected(self):
        with pytest.raises(CloudError):
            MultiCloud(2, member_backend="subinterpreter")

    def test_thread_backend_unchanged_by_close(self):
        fleet = MultiCloud(2)  # thread backend: close() is a no-op
        fleet.close()
        assert isinstance(fleet[0], CloudServer)
