"""Storage-backend parity: the SQLite store is observably a memory store.

The tentpole claim of the storage engine is that ``storage_backend="sqlite"``
is *bit-identical* to the historical in-memory dict/list stores: same rows in
the same order from every read path, same bin slices, same migration
semantics, same observation counters — for every scheme, placement, and
member backend.  These tests pin that claim at three levels:

* backend unit parity — :class:`MemoryBackend` and :class:`SQLiteBackend`
  driven side by side through resets, appends, slices, and drops;
* server regression tests — every mutation path (append, migration in,
  bin drop, re-outsourcing) must invalidate the cached row snapshot and the
  interned retrievals, on both backends;
* execution parity — full workloads through the parity and fault harnesses,
  comparing memory and sqlite runs field for field.
"""

from __future__ import annotations

import os

import pytest

from repro.cloud.server import CloudServer
from repro.cloud.storage import (
    STORAGE_BACKENDS,
    MemoryBackend,
    SQLiteBackend,
    make_storage_backend,
)
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.base import EncryptedRow
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.primitives import SecretKey
from repro.crypto.searchable import SSEScheme
from repro.exceptions import CloudError

pytestmark = pytest.mark.storage

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}


# -- backend unit parity ---------------------------------------------------------
#
# Drive both backends through the same mutation script and require every read
# surface to agree.  Rows are synthetic: EncryptedRow is a frozen value type,
# so `==` on reconstructed rows is exactly the bit-identity the claim needs.


def synthetic_rows(count: int, start_rid: int = 0) -> list:
    return [
        EncryptedRow(
            rid=start_rid + index,
            ciphertext=f"cipher-{start_rid + index}".encode(),
            search_tag=f"tag-{(start_rid + index) % 5}".encode(),
            is_fake=(index % 7 == 0),
        )
        for index in range(count)
    ]


def assert_backend_parity(memory, sqlite, bins) -> None:
    """Every read surface of the two backends agrees."""
    assert memory.row_count() == sqlite.row_count()
    assert list(memory.all_rows()) == list(sqlite.all_rows())
    assert memory.bin_counts() == sqlite.bin_counts()
    assert memory.bin_assignment_view() == sqlite.bin_assignment_view()
    assert memory.has_bin_store == sqlite.has_bin_store
    if memory.has_bin_store:
        assert memory.bin_store_view() == sqlite.bin_store_view()
        for bin_index in bins:
            assert list(memory.bin_candidates(bin_index)) == list(
                sqlite.bin_candidates(bin_index)
            )
    for probe in (list(bins), [None], list(bins) + [None], []):
        assert memory.slice_bins(probe) == sqlite.slice_bins(probe)
    if memory.tag_index is not None:
        assert sqlite.tag_index is not None
        assert len(memory.tag_index) == len(sqlite.tag_index)
        assert memory.tag_index.distinct_count() == sqlite.tag_index.distinct_count()
        for key in {row.search_tag for row in memory.all_rows()}:
            # positions diverge after a drop (sqlite keeps sparse positions,
            # memory compacts) but the rows and their relative order — all a
            # scheme's indexed_search observes — must match exactly.
            assert [row for _pos, row in memory.tag_index.probe(key)] == [
                row for _pos, row in sqlite.tag_index.probe(key)
            ]


@pytest.fixture
def backend_pair():
    memory, sqlite = MemoryBackend(), SQLiteBackend()
    yield memory, sqlite
    sqlite.close()


class TestBackendUnitParity:
    def assignment_for(self, rows, num_bins: int = 3, hole_every: int = 4):
        """rid → bin for most rows; every ``hole_every``-th stays unassigned."""
        return {
            row.rid: row.rid % num_bins
            for row in rows
            if row.rid % hole_every != 0
        }

    @pytest.mark.parametrize("indexed", ["tag-index", "bin-store", "plain"])
    def test_reset_append_slice_drop_script(self, backend_pair, indexed):
        memory, sqlite = backend_pair
        scheme = DeterministicScheme(SecretKey.from_passphrase("unit"))
        base = synthetic_rows(20)
        assignment = self.assignment_for(base)
        build_tag = indexed == "tag-index"
        build_bins = indexed == "bin-store"
        for backend in (memory, sqlite):
            backend.reset(
                base,
                scheme,
                assignment,
                build_tag_index=build_tag,
                build_bin_store=build_bins,
            )
        assert_backend_parity(memory, sqlite, bins=range(4))

        # append a second batch; one row's assignment arrives only now, and
        # one appended row stays unassigned (the overflow every bin scans)
        extra = synthetic_rows(8, start_rid=100)
        late = dict(self.assignment_for(extra))
        late[0] = 2  # base rid 0 was unassigned; its bin arrives late
        for backend in (memory, sqlite):
            backend.append(extra, late)
        assert_backend_parity(memory, sqlite, bins=range(4))

        # drop one bin plus the unassigned overflow, then a no-op drop
        dropped_memory = memory.drop_bins([1, None])
        dropped_sqlite = sqlite.drop_bins([1, None])
        assert dropped_memory == dropped_sqlite > 0
        assert_backend_parity(memory, sqlite, bins=range(4))
        assert memory.drop_bins([99]) == sqlite.drop_bins([99]) == 0
        assert_backend_parity(memory, sqlite, bins=range(4))

    def test_post_drop_replacement_from_assignment(self, backend_pair):
        """After a drop, surviving rows re-place from the *global* map.

        A row appended before its bin assignment existed sits in the
        unassigned overflow; the memory backend's post-drop rebuild moves it
        into its bin, and the SQLite backend must do the same.
        """
        memory, sqlite = backend_pair
        scheme = DeterministicScheme(SecretKey.from_passphrase("unit"))
        rows = synthetic_rows(6)
        for backend in (memory, sqlite):
            backend.reset(
                rows, scheme, None, build_tag_index=False, build_bin_store=True
            )
            # assignments arrive only with a later (empty) append
            backend.append([], {row.rid: 0 for row in rows[:3]})
        # before the drop both backends scan all six rows for any bin...
        assert len(memory.bin_candidates(0)) == len(sqlite.bin_candidates(0)) == 6
        for backend in (memory, sqlite):
            assert backend.drop_bins([99]) == 0  # nothing dropped, no rebuild
        assert len(sqlite.bin_candidates(0)) == 6
        # ...and dropping anything triggers the rebuild that re-places the
        # three assigned rows out of the overflow on both backends alike.
        sacrificial = synthetic_rows(1, start_rid=50)
        for backend in (memory, sqlite):
            backend.append(sacrificial, {50: 7})
            assert backend.drop_bins([7]) == 1
        assert_backend_parity(memory, sqlite, bins=range(3))
        for backend in (memory, sqlite):
            # the three assigned rows left the overflow for their bin...
            assert [row.rid for row in backend.bin_store_view().get(0, [])] == [0, 1, 2]
            # ...so a scan of any *other* bin now only sees the 3 unassigned
            assert len(backend.bin_candidates(1)) == 3

    def test_tag_counters_live_in_python(self, backend_pair):
        """Probe counters are plain attributes on both index flavours."""
        memory, sqlite = backend_pair
        scheme = DeterministicScheme(SecretKey.from_passphrase("unit"))
        rows = synthetic_rows(10)
        for backend in (memory, sqlite):
            backend.reset(
                rows, scheme, None, build_tag_index=True, build_bin_store=False
            )
        for index in (memory.tag_index, sqlite.tag_index):
            index.probe(rows[0].search_tag)
            index.probe(b"no-such-tag")
        assert memory.tag_index.probe_count == sqlite.tag_index.probe_count == 2
        assert memory.tag_index.rows_examined == sqlite.tag_index.rows_examined
        # restore is a plain attribute write — the observation-snapshot path
        sqlite.tag_index.probe_count = 0
        sqlite.tag_index.rows_examined = 0
        assert sqlite.tag_index.probe_count == 0

    def test_sqlite_transaction_rolls_back_atomically(self, backend_pair):
        memory, sqlite = backend_pair
        scheme = DeterministicScheme(SecretKey.from_passphrase("unit"))
        rows = synthetic_rows(5)
        for backend in (memory, sqlite):
            backend.reset(
                rows, scheme, None, build_tag_index=True, build_bin_store=False
            )
        before = list(sqlite.all_rows())
        with pytest.raises(RuntimeError):
            with sqlite.transaction():
                sqlite.append(synthetic_rows(3, start_rid=200), {200: 1})
                raise RuntimeError("mid-mutation crash")
        # tables *and* the Python-side counters rolled back together
        assert sqlite.all_rows() == before
        assert sqlite.row_count() == 5
        assert sqlite.bin_assignment_view() == {}
        assert len(sqlite.tag_index) == len(memory.tag_index)
        # the next append lands at the positions the rollback released
        for backend in (memory, sqlite):
            backend.append(synthetic_rows(2, start_rid=300), None)
        assert_backend_parity(memory, sqlite, bins=range(3))


class TestBackendLifecycle:
    def test_make_storage_backend_resolution(self):
        assert isinstance(make_storage_backend(None), MemoryBackend)
        assert isinstance(make_storage_backend("memory"), MemoryBackend)
        sqlite = make_storage_backend("sqlite")
        try:
            assert isinstance(sqlite, SQLiteBackend)
        finally:
            sqlite.close()
        injected = MemoryBackend()
        assert make_storage_backend(injected) is injected
        with pytest.raises(CloudError):
            make_storage_backend("bogus")
        assert set(STORAGE_BACKENDS) == {"memory", "sqlite"}

    def test_sqlite_close_removes_owned_tempfile(self):
        backend = SQLiteBackend(member_name="cloud/member-1")
        path = backend.path
        assert os.path.exists(path)
        backend.close()
        backend.close()  # idempotent
        assert not os.path.exists(path)
        assert not os.path.exists(path + "-wal")

    def test_sqlite_explicit_path_is_preserved(self, tmp_path):
        path = str(tmp_path / "member.sqlite3")
        backend = SQLiteBackend(path=path)
        backend.append(synthetic_rows(3), None)
        backend.close()
        assert os.path.exists(path)

    def test_storage_dir_places_the_database(self, tmp_path):
        server = CloudServer(storage_backend="sqlite", storage_dir=str(tmp_path))
        try:
            assert os.path.dirname(server.storage.path) == str(tmp_path)
        finally:
            server.close()
        assert list(tmp_path.iterdir()) == []

    def test_unknown_backend_raises_cloud_error(self):
        with pytest.raises(CloudError):
            CloudServer(storage_backend="bogus")


# -- server mutation-path regressions --------------------------------------------
#
# The stale-cache audit: every mutation path must invalidate the cached row
# snapshot (`stored_encrypted_rows`) and the interned per-query retrievals, so
# reads *after* a mutation reflect it even when identical reads ran before it.


def outsourced_server(storage_backend: str, scheme, num_rows: int = 12):
    from repro.data.relation import Row

    rows = [
        Row(rid=index, values={"key": f"v{index % 4}", "payload": str(index)},
            sensitive=True)
        for index in range(num_rows)
    ]
    encrypted = scheme.encrypt_rows(rows, "key")
    assignment = {row.rid: row.rid % 3 for row in rows}
    server = CloudServer(storage_backend=storage_backend)
    server.store_sensitive(encrypted, scheme, assignment)
    return server, encrypted, assignment


@pytest.mark.parametrize("storage_backend", STORAGE_BACKENDS)
class TestMutationPathInvalidation:
    def test_receive_migrated_slice_refreshes_snapshot(self, storage_backend):
        scheme = DeterministicScheme(SecretKey.from_passphrase("mutate"))
        source, _rows, _assignment = outsourced_server("memory", scheme)
        target, _trows, _tassignment = outsourced_server(storage_backend, scheme)
        try:
            before = target.stored_encrypted_rows  # warm the cache
            slice_rows, slice_assignment = source.sensitive_slice([1])
            migrated = [
                EncryptedRow(
                    rid=row.rid + 1000,
                    ciphertext=row.ciphertext,
                    search_tag=row.search_tag,
                    is_fake=row.is_fake,
                )
                for row in slice_rows
            ]
            target.receive_migrated_slice(
                migrated,
                {rid + 1000: bin_ for rid, bin_ in slice_assignment.items()},
            )
            after = target.stored_encrypted_rows
            assert after == before + tuple(migrated)
            assert target.encrypted_row_count == len(before) + len(migrated)
            assert target.stored_sensitive_bins()[1] > source.stored_sensitive_bins()[1] - 1
        finally:
            source.close()
            target.close()

    def test_drop_sensitive_bins_refreshes_snapshot_and_serving(
        self, storage_backend
    ):
        scheme = DeterministicScheme(SecretKey.from_passphrase("mutate"))
        server, encrypted, assignment = outsourced_server(storage_backend, scheme)
        try:
            warm = server.stored_encrypted_rows
            assert len(warm) == len(encrypted)
            dropped = server.drop_sensitive_bins([2])
            expected_dropped = sum(1 for bin_ in assignment.values() if bin_ == 2)
            assert dropped == expected_dropped
            survivors = server.stored_encrypted_rows
            assert len(survivors) == len(encrypted) - dropped
            assert all(assignment[row.rid] != 2 for row in survivors)
            assert 2 not in server.stored_sensitive_bins()
            # a no-op drop must not clear anything
            again = server.stored_encrypted_rows
            assert server.drop_sensitive_bins([2]) == 0
            assert server.stored_encrypted_rows == again
        finally:
            server.close()

    def test_append_after_identical_query_serves_new_row(self, storage_backend):
        """The interned-retrieval regression: query, append, query again."""
        import random

        from repro.core.engine import QueryBinningEngine
        from repro.workloads.generator import generate_partitioned_dataset

        dataset = generate_partitioned_dataset(
            num_values=16,
            sensitivity_fraction=0.5,
            association_fraction=0.5,
            tuples_per_value=2,
            seed=13,
        )
        engine = QueryBinningEngine(
            partition=dataset.partition,
            attribute=dataset.attribute,
            scheme=DeterministicScheme(SecretKey.from_passphrase("mutate")),
            cloud=CloudServer(storage_backend=storage_backend),
            rng=random.Random(3),
        ).setup()
        try:
            value = next(iter(dataset.sensitive_counts))
            first = sorted(row.rid for row in engine.query(value))
            engine.insert({dataset.attribute: value, "payload": "fresh"},
                          sensitive=True)
            second = sorted(row.rid for row in engine.query(value))
            assert len(second) == len(first) + 1
            assert set(first) < set(second)
            # a re-outsourcing (rebin path) rebuilds the store and still serves
            engine.cloud.reset_observations()
            engine.setup()
            third = sorted(row.rid for row in engine.query(value))
            assert set(second) <= set(third)  # fresh layout re-encrypts; the
            # original tuples plus the insert are all still retrievable
            assert len(third) >= len(second)
        finally:
            engine.cloud.close()

    def test_non_sensitive_append_reflected_in_serving(self, storage_backend):
        from repro.data.relation import Relation
        from repro.data.schema import Attribute, Schema

        relation = Relation(
            "ns", Schema([Attribute("key", dtype=str), Attribute("payload", dtype=str)])
        )
        first = relation.insert({"key": "a", "payload": "p"})
        server = CloudServer(storage_backend=storage_backend)
        try:
            server.store_non_sensitive(relation)
            server.build_index("key")
            assert [r.rid for r in server._select_non_sensitive("key", ["a"])] == [
                first.rid
            ]
            # owner inserts into the shared relation, then registers the row —
            # the indexed lookup must serve it immediately
            second = relation.insert({"key": "a", "payload": "q"})
            server.register_non_sensitive_row(second)
            assert [r.rid for r in server._select_non_sensitive("key", ["a"])] == [
                first.rid,
                second.rid,
            ]
        finally:
            server.close()

    def test_observation_snapshot_restore_round_trip(self, storage_backend):
        scheme = DeterministicScheme(SecretKey.from_passphrase("mutate"))
        server, _rows, _assignment = outsourced_server(storage_backend, scheme)
        try:
            tokens = scheme.tokens_for_values(["v0"], "key")
            server._search_sensitive(tokens, None)
            snapshot = server.observation_snapshot()
            probes_then = server._tag_index.probe_count
            server._search_sensitive(
                scheme.tokens_for_values(["v1", "v2"], "key"), None
            )
            assert server._tag_index.probe_count > probes_then
            server.restore_observations(snapshot)
            assert server._tag_index.probe_count == probes_then
            assert server.observation_snapshot() == snapshot
        finally:
            server.close()


# -- execution parity across backends --------------------------------------------


def view_content(view):
    return (
        view.attribute,
        view.non_sensitive_request,
        view.sensitive_request_size,
        tuple(row.rid for row in view.returned_non_sensitive),
        view.returned_sensitive_rids,
        view.sensitive_bin_index,
        view.non_sensitive_bin_index,
    )


def assert_cross_backend_run_parity(memory_run, sqlite_run) -> None:
    """A sqlite run is field-for-field identical to the memory run."""
    assert sqlite_run.result_rids == memory_run.result_rids
    assert sqlite_run.traces == memory_run.traces
    assert sqlite_run.cloud.stats == memory_run.cloud.stats
    assert [view_content(v) for v in sqlite_run.cloud.view_log] == [
        view_content(v) for v in memory_run.cloud.view_log
    ]
    for direction in ("upload", "download"):
        assert sqlite_run.cloud.network.total_tuples(direction) == (
            memory_run.cloud.network.total_tuples(direction)
        )
    if memory_run.fleet is not None:
        assert sqlite_run.fleet is not None
        for field_name in (
            "queries_served",
            "sensitive_tokens_processed",
            "sensitive_rows_returned",
            "sensitive_rows_scanned",
            "non_sensitive_rows_returned",
            "non_sensitive_probes",
        ):
            assert sqlite_run.fleet.aggregate_stat(field_name) == (
                memory_run.fleet.aggregate_stat(field_name)
            ), field_name
        assert sqlite_run.fleet.total_transfer_tuples("download") == (
            memory_run.fleet.total_transfer_tuples("download")
        )
        for mem_server, sql_server in zip(
            memory_run.fleet.servers, sqlite_run.fleet.servers
        ):
            assert [view_content(v) for v in sql_server.view_log] == [
                view_content(v) for v in mem_server.view_log
            ]


@pytest.mark.multicloud
@pytest.mark.parametrize("scheme_name", sorted(SCHEMES), ids=sorted(SCHEMES))
class TestCrossBackendExecutionParity:
    def test_thread_fleet_all_placements(self, scheme_name, parity_harness):
        memory = parity_harness(SCHEMES[scheme_name])
        sqlite = parity_harness(SCHEMES[scheme_name], storage_backend="sqlite")
        workload = memory.workload()
        memory_runs = memory.run_all(workload)
        sqlite_runs = sqlite.run_all(workload)
        # the sqlite fleet satisfies the repo's own parity invariants...
        sqlite.assert_identical_results(sqlite_runs)
        sqlite.assert_identical_traces(sqlite_runs)
        sqlite.assert_single_server_parity(
            sqlite_runs["sequential"], sqlite_runs["batched"]
        )
        sqlite.assert_sharded_statistics_parity(
            sqlite_runs["sequential"], sqlite_runs["sharded"]
        )
        # ...and every placement is bit-identical to its memory twin
        for placement in memory.PLACEMENTS:
            assert_cross_backend_run_parity(
                memory_runs[placement], sqlite_runs[placement]
            )

    def test_stored_rows_identical_across_backends(self, scheme_name, parity_harness):
        """Outsourcing lands the same logical store in either backend.

        Ciphertext bytes differ between two independently keyed-up engines
        (AEAD nonces are random), so this compares the storage *structure*:
        row identity and order, fake-padding placement, and bin occupancy.
        Byte-exact write/read fidelity within one backend is pinned by the
        unit-parity tests above.
        """
        memory = parity_harness(SCHEMES[scheme_name])
        sqlite = parity_harness(SCHEMES[scheme_name], storage_backend="sqlite")
        memory_rows = memory.make_engine().cloud.stored_encrypted_rows
        sqlite_rows = sqlite.make_engine().cloud.stored_encrypted_rows
        assert [(row.rid, row.is_fake) for row in memory_rows] == [
            (row.rid, row.is_fake) for row in sqlite_rows
        ]
        assert memory.make_engine().cloud.stored_sensitive_bins() == (
            sqlite.make_engine().cloud.stored_sensitive_bins()
        )


@pytest.mark.multicloud
@pytest.mark.parametrize(
    "scheme_name",
    # one tag-index scheme and the bin-store scheme cover both serve paths;
    # the remaining schemes ride the (cheaper) thread-backend matrix above
    ["deterministic", "sse"],
)
def test_process_fleet_backend_parity(scheme_name, parity_harness):
    memory = parity_harness(SCHEMES[scheme_name], member_backend="process")
    sqlite = parity_harness(
        SCHEMES[scheme_name], member_backend="process", storage_backend="sqlite"
    )
    workload = memory.workload()
    memory_run = memory.run("sharded", workload)
    sqlite_run = sqlite.run("sharded", workload)
    assert_cross_backend_run_parity(memory_run, sqlite_run)


@pytest.mark.faults
@pytest.mark.parametrize("scheme_name", ["deterministic", "sse"])
def test_sqlite_fault_parity_mid_batch_kill(scheme_name, fault_harness):
    """A member dies mid-batch over sqlite storage: parity must survive, and
    the degraded sqlite run must match the degraded memory run exactly."""
    sqlite = fault_harness(SCHEMES[scheme_name], storage_backend="sqlite")
    memory = fault_harness(SCHEMES[scheme_name])
    workload = sqlite.workload()
    healthy = sqlite.run("sharded", workload)
    victim, load = sqlite.busiest_member(healthy, workload)
    assert load > 1
    degraded = sqlite.run_with_failure(workload, victim, at_offset=load // 2)
    sqlite.assert_degraded_parity(healthy, degraded)
    memory_degraded = memory.run_with_failure(workload, victim, at_offset=load // 2)
    assert degraded.result_rids == memory_degraded.result_rids
    assert degraded.traces == memory_degraded.traces
    assert sqlite.half_view_contents(degraded) == memory.half_view_contents(
        memory_degraded
    )


@pytest.mark.faults
def test_sqlite_slice_migration_restores_redundancy(fault_harness):
    """Re-replication over sqlite members: the keyed SQL handoff end to end.

    Kill the busiest member, prove degraded parity, then
    ``restore_redundancy()`` — every re-homed slice is read from a
    surviving member's database (`sensitive_slice`), installed into the
    destination's (`receive_migrated_slice`), and the follow-up run is
    still bit-identical to the healthy reference.
    """
    from types import SimpleNamespace

    harness = fault_harness(
        DeterministicScheme, num_shards=5, storage_backend="sqlite"
    )
    workload = harness.workload(repeats=1)
    healthy = harness.run("sharded", workload)
    victim, load = harness.busiest_member(healthy, workload)
    degraded = harness.run_with_failure(workload, victim, at_offset=load // 2)
    harness.assert_degraded_parity(healthy, degraded)

    engine = degraded.engine
    fleet = engine.multi_cloud
    victim_bins = set(fleet[victim].stored_sensitive_bins())
    manager = engine.fleet_lifecycle()
    report = manager.restore_redundancy()
    assert victim in fleet.departed_members
    # exactly the victim's slices were re-homed, sourced via keyed SELECTs
    copied = {b for _source, _target, bins in report.copies for b in bins}
    assert copied == victim_bins
    assert set(manager.replication_health().values()) == {2}

    fleet.reset_observations()
    outcome = engine.execute_workload_with_rows(list(workload), placement="sharded")
    restored = SimpleNamespace(
        placement="sharded",
        engine=engine,
        fleet=fleet,
        cloud=engine.cloud,
        result_rids=[sorted(row.rid for row in rows) for rows, _trace in outcome],
        traces=[trace for _rows, trace in outcome],
    )
    harness.assert_degraded_parity(healthy, restored)


# -- threaded access ------------------------------------------------------------
#
# ``SQLiteBackend`` hands one connection (``check_same_thread=False``) to
# every fleet worker thread; before the connection mutex, interleaved
# cursors corrupted reads ("recursive use of cursors") and partially-applied
# writes were observable.  The hammer below is the regression pin: readers
# see every surface internally consistent while writers append and drop
# concurrently, and the end state is exactly the sequential end state.


class TestSQLiteThreadedAccess:
    def test_threaded_hammer_reads_stay_consistent(self):
        import threading

        scheme = DeterministicScheme(SecretKey.from_passphrase("hammer"))
        backend = SQLiteBackend()
        base = synthetic_rows(30)
        assignment = {row.rid: row.rid % 3 for row in base}
        backend.reset(
            base, scheme, assignment, build_tag_index=True, build_bin_store=False
        )
        errors = []
        stop = threading.Event()
        appends, batch = 10, 5

        def reader():
            try:
                # every *single* read is a consistent snapshot: appends land
                # in whole batches, so any observed state is one of the
                # sequential states (mid-append row counts never show).
                # Cross-call comparisons are deliberately avoided — the
                # mutex serializes calls, not call *pairs*.
                valid_counts = {
                    len(base) + i * batch for i in range(appends + 1)
                }
                while not stop.is_set():
                    rows = backend.all_rows()
                    assert len(rows) == len({row.rid for row in rows})
                    assert len(rows) in valid_counts
                    counts = backend.bin_counts()
                    assert sum(counts.values()) in valid_counts
                    slice_rows, slice_map = backend.slice_bins([0, 1])
                    assert {row.rid for row in slice_rows} == set(slice_map)
            except Exception as exc:
                errors.append(exc)

        def writer():
            try:
                for index in range(appends):
                    fresh = synthetic_rows(batch, start_rid=1000 + index * batch)
                    backend.append(
                        fresh, {row.rid: row.rid % 3 for row in fresh}
                    )
            except Exception as exc:
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
        threads.append(threading.Thread(target=writer, daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        assert backend.row_count() == len(base) + appends * batch
        # end state matches the same script run sequentially
        reference = SQLiteBackend()
        reference.reset(
            base, scheme, assignment, build_tag_index=True, build_bin_store=False
        )
        for index in range(appends):
            fresh = synthetic_rows(batch, start_rid=1000 + index * batch)
            reference.append(fresh, {row.rid: row.rid % 3 for row in fresh})
        assert list(backend.all_rows()) == list(reference.all_rows())
        assert backend.bin_counts() == reference.bin_counts()
        reference.close()
        backend.close()

    def test_concurrent_transactions_serialize(self):
        import threading

        scheme = DeterministicScheme(SecretKey.from_passphrase("txn"))
        backend = SQLiteBackend()
        backend.reset(
            synthetic_rows(6), scheme, None,
            build_tag_index=False, build_bin_store=False,
        )
        errors = []

        def drop_and_refill(start_rid):
            try:
                with backend.transaction():
                    # the whole read-modify-write is one critical section:
                    # no other thread's statements can land inside it
                    before = backend.row_count()
                    backend.append(synthetic_rows(2, start_rid=start_rid), None)
                    assert backend.row_count() == before + 2
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=drop_and_refill, args=(100 + i * 10,), daemon=True)
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        assert backend.row_count() == 6 + 12
        backend.close()
