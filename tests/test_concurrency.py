"""Concurrency regression pins for the shared-state fixes.

Each test here reproduces a specific unsynchronized-mutation bug the
locking sweep fixed; they fail (flakily but reliably under enough
iterations) if the corresponding lock is removed:

- engine caches (``_token_cache``, ``_request_cache``, the plaintext bin
  cache) cleared by inserts mid-query → the engine lock;
- ``CloudServer`` observation state (query ids, view log, half-level
  caches) interleaved by concurrent serves → the server lock;
- ``NetworkModel`` counters bumped from fleet worker threads → the
  network lock.
"""

import random
import threading

import pytest

from repro.cloud.network import NetworkModel
from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.primitives import SecretKey


@pytest.fixture
def concurrency_engine(parity_dataset):
    engine = QueryBinningEngine(
        partition=parity_dataset.partition,
        attribute=parity_dataset.attribute,
        scheme=DeterministicScheme(SecretKey.from_passphrase("concurrency-key")),
        cloud=CloudServer(),
        rng=random.Random(17),
    ).setup()
    return engine, parity_dataset


class TestEngineMutateWhileQuery:
    """Satellite pin: inserts clearing owner caches under live queries."""

    def test_queries_stay_exact_under_concurrent_inserts(self, concurrency_engine):
        engine, dataset = concurrency_engine
        values = list(dataset.all_values)
        baseline = {
            value: sorted(row.rid for row in engine.query(value)) for value in values
        }
        # inserts target ONE existing sensitive value; every other value's
        # result set must stay bit-identical throughout, which is only true
        # if a query never observes a half-cleared cache.
        target = next(
            value
            for value in values
            if engine.layout.locate_sensitive(value) is not None
        )
        template = next(iter(engine.partition.sensitive.rows))
        queried = [value for value in values if value != target]
        errors = []
        mismatches = []
        stop = threading.Event()

        def querier(worker_values):
            try:
                while not stop.is_set():
                    for value in worker_values:
                        rids = sorted(row.rid for row in engine.query(value))
                        if rids != baseline[value]:
                            mismatches.append((value, rids))
                            return
            except Exception as exc:
                errors.append(exc)

        def inserter(count):
            try:
                for _ in range(count):
                    new_values = dict(template.values)
                    new_values[engine.attribute] = target
                    engine.insert(new_values, sensitive=True)
            except Exception as exc:
                errors.append(exc)
            finally:
                stop.set()

        num_inserts = 12
        threads = [
            threading.Thread(target=querier, args=(queried[i::3],), daemon=True)
            for i in range(3)
        ] + [threading.Thread(target=inserter, args=(num_inserts,), daemon=True)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        assert not mismatches, mismatches
        # the inserted rows are all present once the dust settles
        final = sorted(row.rid for row in engine.query(target))
        assert len(final) == len(baseline[target]) + num_inserts


class TestCloudServerConcurrentServe:
    """Satellite pin: the server's observation state under parallel serves."""

    def test_query_ids_and_views_stay_consistent(self, concurrency_engine):
        engine, dataset = concurrency_engine
        values = list(dataset.all_values) * 2
        requests, _slots = engine.build_requests(values)
        requests = [request for request in requests if request is not None]
        responses = [None] * len(requests)
        errors = []

        def serve(index, request):
            try:
                responses[index] = engine.cloud.serve(request)
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=serve, args=(index, request), daemon=True)
            for index, request in enumerate(requests)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        assert all(response is not None for response in responses)
        # one view per serve, and query ids issued exactly once each
        assert len(engine.cloud.view_log) == len(requests)
        issued = sorted(view.query_id for view in engine.cloud.view_log)
        assert issued == list(range(len(requests)))


class TestNetworkModelCounters:
    """Satellite pin: transfer log and wire-byte counter atomicity."""

    def test_counters_are_exact_under_contention(self):
        network = NetworkModel()
        workers, per_worker = 8, 200
        errors = []

        def hammer(worker):
            try:
                for i in range(per_worker):
                    network.record("download", f"w{worker}", tuples=3)
                    network.add_wire_bytes(7)
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,), daemon=True)
            for worker in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        total = workers * per_worker
        assert len(network.log) == total
        assert network.total_tuples("download") == 3 * total
        assert network.wire_bytes == 7 * total
        # the simulated clock is additive: N identical transfers cost
        # exactly N times one transfer, regardless of interleaving
        assert network.total_seconds() == pytest.approx(
            total * network.transfer_seconds(3)
        )

    def test_snapshot_roundtrip_is_atomic(self):
        network = NetworkModel()
        network.record("download", "seed", tuples=1)
        length = len(network.log)
        network.record("download", "doomed", tuples=5)
        network.truncate_log(length)
        assert [entry.description for entry in network.log] == ["seed"]
