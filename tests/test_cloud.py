"""Unit tests for the cloud substrate: indexes, network model, servers."""

import pytest

from repro.cloud.indexes import HashIndex, SortedIndex
from repro.cloud.multi_cloud import MultiCloud
from repro.cloud.network import NetworkModel
from repro.cloud.server import CloudServer
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.exceptions import CloudError, UnknownAttributeError


def keyed_relation(num_rows=12):
    schema = Schema([Attribute("key"), Attribute("payload")])
    relation = Relation("r", schema)
    for i in range(num_rows):
        relation.insert({"key": f"k{i % 4}", "payload": str(i)})
    return relation


class TestHashIndex:
    def test_lookup_finds_all_matching_rows(self):
        index = HashIndex(keyed_relation(), "key")
        assert len(index.lookup("k1")) == 3
        assert index.lookup("missing") == []

    def test_lookup_many_unions(self):
        index = HashIndex(keyed_relation(), "key")
        assert len(index.lookup_many(["k0", "k1"])) == 6

    def test_probe_count_tracks_work(self):
        index = HashIndex(keyed_relation(), "key")
        index.lookup_many(["k0", "k1", "k2"])
        assert index.probe_count == 3

    def test_add_row_updates_index(self):
        relation = keyed_relation()
        index = HashIndex(relation, "key")
        new_row = relation.insert({"key": "k9", "payload": "new"})
        index.add_row(new_row)
        assert [r.rid for r in index.lookup("k9")] == [new_row.rid]

    def test_distinct_count_and_len(self):
        index = HashIndex(keyed_relation(), "key")
        assert index.distinct_count() == 4
        assert len(index) == 12

    def test_unknown_attribute_rejected(self):
        with pytest.raises(UnknownAttributeError):
            HashIndex(keyed_relation(), "nope")


class TestSortedIndex:
    def _numeric_relation(self):
        schema = Schema([Attribute("n", dtype=int)])
        relation = Relation("nums", schema)
        for value in [5, 3, 9, 3, 7, 1]:
            relation.insert({"n": value})
        return relation

    def test_equality_lookup(self):
        index = SortedIndex(self._numeric_relation(), "n")
        assert len(index.lookup(3)) == 2
        assert index.lookup(100) == []

    def test_range_lookup(self):
        index = SortedIndex(self._numeric_relation(), "n")
        values = sorted(r["n"] for r in index.range(3, 7))
        assert values == [3, 3, 5, 7]

    def test_range_exclusive_bounds(self):
        index = SortedIndex(self._numeric_relation(), "n")
        values = sorted(r["n"] for r in index.range(3, 7, include_low=False, include_high=False))
        assert values == [5]

    def test_open_ended_range(self):
        index = SortedIndex(self._numeric_relation(), "n")
        assert sorted(r["n"] for r in index.range(low=7)) == [7, 9]
        assert sorted(r["n"] for r in index.range(high=3)) == [1, 3, 3]

    def test_min_max_and_add(self):
        index = SortedIndex(self._numeric_relation(), "n")
        assert index.min_key() == 1 and index.max_key() == 9
        relation = self._numeric_relation()
        index2 = SortedIndex(relation, "n")
        row = relation.insert({"n": 100})
        index2.add_row(row)
        assert index2.max_key() == 100


class TestNetworkModel:
    def test_seconds_per_tuple_matches_bandwidth(self):
        network = NetworkModel(bandwidth_mbps=30.0, bytes_per_tuple=200, latency_seconds=0.0)
        assert network.seconds_per_tuple == pytest.approx(200 * 8 / 30e6)

    def test_transfer_and_logging(self):
        network = NetworkModel(latency_seconds=0.0)
        seconds = network.record("download", "results", tuples=100)
        assert seconds > 0
        assert network.total_tuples("download") == 100
        assert network.total_seconds() == pytest.approx(seconds)

    def test_direction_filters(self):
        network = NetworkModel()
        network.record("upload", "outsource", tuples=10)
        network.record("download", "results", tuples=5)
        assert network.total_tuples("upload") == 10
        assert network.total_tuples("download") == 5
        assert network.total_tuples() == 15

    def test_reset(self):
        network = NetworkModel()
        network.record("upload", "x", tuples=1)
        network.reset()
        assert network.total_seconds() == 0.0 and len(network.log) == 0


class TestCloudServer:
    def _stored_server(self):
        relation = keyed_relation()
        scheme = NonDeterministicScheme()
        encrypted = scheme.encrypt_rows(list(relation.rows)[:4], "key")
        server = CloudServer()
        server.store_non_sensitive(relation)
        server.store_sensitive(encrypted, scheme)
        return server, scheme

    def test_requires_outsourcing_before_queries(self):
        server = CloudServer()
        with pytest.raises(CloudError):
            server.non_sensitive_relation
        with pytest.raises(CloudError):
            server.build_index("key")

    def test_process_request_returns_both_halves(self):
        server, scheme = self._stored_server()
        tokens = scheme.tokens_for_values(["k0"], "key")
        response = server.process_request("key", ["k0"], tokens)
        assert response.total_returned == len(response.non_sensitive_rows) + len(
            response.encrypted_rows
        )
        assert response.non_sensitive_rows  # cleartext matches exist

    def test_adversarial_view_recorded(self):
        server, scheme = self._stored_server()
        server.process_request("key", ["k0", "k1"], scheme.tokens_for_values(["k0"], "key"))
        assert len(server.view_log) == 1
        view = server.view_log.views[0]
        assert view.non_sensitive_request == ("k0", "k1")
        assert view.sensitive_request_size >= 1

    def test_statistics_accumulate(self):
        server, scheme = self._stored_server()
        server.process_request("key", ["k0"], [])
        server.process_request("key", ["k1"], [])
        assert server.stats.queries_served == 2
        assert server.stats.non_sensitive_rows_returned == 6

    def test_sensitive_search_requires_scheme(self):
        server = CloudServer()
        server.store_non_sensitive(keyed_relation())
        with pytest.raises(CloudError):
            server.process_request("key", [], [object()])

    def test_append_rows(self):
        server, scheme = self._stored_server()
        before = server.encrypted_row_count
        more = scheme.encrypt_rows(list(keyed_relation().rows)[:2], "key")
        server.append_sensitive(more)
        assert server.encrypted_row_count == before + 2
        added = server.append_non_sensitive([{"key": "k7", "payload": "x"}])
        assert added == 1
        response = server.process_request("key", ["k7"], [])
        assert len(response.non_sensitive_rows) == 1

    def test_reset_observations(self):
        server, scheme = self._stored_server()
        server.process_request("key", ["k0"], [])
        server.reset_observations()
        assert len(server.view_log) == 0 and server.stats.queries_served == 0

    def test_without_indexes_falls_back_to_scan(self):
        relation = keyed_relation()
        server = CloudServer(use_indexes=False)
        server.store_non_sensitive(relation)
        response = server.process_request("key", ["k2"], [])
        assert len(response.non_sensitive_rows) == 3


class TestMultiCloud:
    def test_requires_two_servers(self):
        with pytest.raises(CloudError):
            MultiCloud(count=1)

    def test_broadcast_and_fan_out(self):
        clouds = MultiCloud(count=2)
        relation = keyed_relation()
        clouds.broadcast_non_sensitive(relation)
        scheme = NonDeterministicScheme()
        rows = list(relation.rows)[:4]
        encrypted = scheme.encrypt_rows(rows, "key")
        clouds.distribute_sensitive([encrypted, encrypted], scheme)
        tokens = scheme.tokens_for_values(["k0"], "key")
        responses = clouds.fan_out("key", ["k0"], [tokens, tokens])
        assert len(responses) == 2
        # cleartext request charged only to the first server
        assert responses[1].non_sensitive_rows == []

    def test_distribution_shape_checked(self):
        clouds = MultiCloud(count=3)
        scheme = NonDeterministicScheme()
        with pytest.raises(CloudError):
            clouds.distribute_sensitive([[], []], scheme)
        with pytest.raises(CloudError):
            clouds.fan_out("key", [], [[], []])

    def test_view_isolation_per_server(self):
        clouds = MultiCloud(count=2)
        relation = keyed_relation()
        clouds.broadcast_non_sensitive(relation)
        scheme = NonDeterministicScheme()
        encrypted = scheme.encrypt_rows(list(relation.rows)[:4], "key")
        clouds.distribute_sensitive([encrypted, []], scheme)
        clouds.fan_out("key", ["k0"], [scheme.tokens_for_values(["k0"], "key"), []])
        sizes = clouds.single_server_view_sizes()
        assert sizes["cloud-0"] == 1 and sizes["cloud-1"] == 1
        assert clouds.total_transfer_seconds() > 0
