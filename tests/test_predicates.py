"""Unit tests for the predicate algebra and selection/merge helpers."""

import pytest

from repro.data.relation import Row
from repro.exceptions import QueryError
from repro.query.merge import (
    filter_rows,
    group_rows_by_value,
    merge_grouped,
    merge_results,
    project_rows,
)
from repro.query.predicates import (
    And,
    Equals,
    InSet,
    Not,
    Or,
    RangePredicate,
    TruePredicate,
)
from repro.query.selection import BinnedQuery, SelectionQuery


def row(**values):
    return Row(rid=values.pop("rid", 0), values=values)


class TestPredicates:
    def test_equals(self):
        pred = Equals("dept", "defense")
        assert pred.matches(row(dept="defense"))
        assert not pred.matches(row(dept="design"))
        assert pred.attributes() == ("dept",)

    def test_in_set(self):
        pred = InSet("id", ["a", "b"])
        assert pred.matches(row(id="a"))
        assert not pred.matches(row(id="z"))
        assert len(pred) == 2

    def test_range_inclusive_and_exclusive(self):
        pred = RangePredicate("age", low=10, high=20)
        assert pred.matches(row(age=10)) and pred.matches(row(age=20))
        exclusive = RangePredicate("age", low=10, high=20, include_low=False, include_high=False)
        assert not exclusive.matches(row(age=10))
        assert not exclusive.matches(row(age=20))
        assert exclusive.matches(row(age=15))

    def test_range_open_ended(self):
        assert RangePredicate("age", low=18).matches(row(age=99))
        assert RangePredicate("age", high=18).matches(row(age=5))

    def test_range_requires_a_bound(self):
        with pytest.raises(QueryError):
            RangePredicate("age")

    def test_range_null_value_never_matches(self):
        assert not RangePredicate("age", low=0).matches(row(age=None))

    def test_boolean_combinators(self):
        pred = Equals("dept", "defense") & RangePredicate("age", low=30)
        assert pred.matches(row(dept="defense", age=40))
        assert not pred.matches(row(dept="defense", age=20))
        either = Equals("dept", "defense") | Equals("dept", "design")
        assert either.matches(row(dept="design", age=1))
        negated = ~Equals("dept", "defense")
        assert negated.matches(row(dept="design"))

    def test_combined_attributes_deduplicated(self):
        pred = And([Equals("a", 1), Or([Equals("a", 2), Equals("b", 3)])])
        assert pred.attributes() == ("a", "b")

    def test_true_predicate(self):
        assert TruePredicate().matches(row(x=1))
        assert TruePredicate().attributes() == ()


class TestSelectionQuery:
    def test_describe_mentions_attribute_and_value(self):
        query = SelectionQuery("EId", "E101")
        assert "EId" in query.describe() and "E101" in query.describe()

    def test_empty_attribute_rejected(self):
        with pytest.raises(QueryError):
            SelectionQuery("", "x")

    def test_binned_query_counts_and_coverage(self):
        query = SelectionQuery("EId", "E101")
        binned = BinnedQuery(
            original=query,
            sensitive_values=("E101", "E259"),
            non_sensitive_values=("E199", "E254"),
        )
        assert binned.total_requested_values == 4
        assert binned.covers_query_value()
        missing = BinnedQuery(query, ("E1",), ("E2",))
        assert not missing.covers_query_value()


class TestMerge:
    def test_filter_rows_applies_original_predicate(self):
        query = SelectionQuery("id", "a")
        rows = [row(rid=1, id="a"), row(rid=2, id="b")]
        assert [r.rid for r in filter_rows(rows, query)] == [1]

    def test_merge_unions_and_filters(self):
        query = SelectionQuery("id", "a")
        sensitive = [row(rid=1, id="a"), row(rid=2, id="z")]
        non_sensitive = [row(rid=3, id="a"), row(rid=1, id="a")]
        merged = merge_results(query, sensitive, non_sensitive)
        assert sorted(r.rid for r in merged) == [1, 3]

    def test_merge_respects_projection(self):
        query = SelectionQuery("id", "a", projection=("id",))
        merged = merge_results(query, [row(rid=1, id="a", other=5)], [])
        assert merged[0].as_dict() == {"id": "a"}

    def test_merge_already_filtered_skips_filtering(self):
        query = SelectionQuery("id", "a")
        rows = [row(rid=9, id="zzz")]
        merged = merge_results(query, rows, [], already_filtered=True)
        assert [r.rid for r in merged] == [9]

    def test_project_rows_none_is_identity(self):
        rows = [row(rid=1, id="a")]
        assert project_rows(rows, None) == rows

    def test_grouping_matches_filter_rows_per_value(self):
        rows = [
            row(rid=1, id="a"), row(rid=2, id="b"), row(rid=3, id="a"),
            row(rid=4, id="c"), row(rid=5, id="b"),
        ]
        grouped = group_rows_by_value(rows, "id")
        for value in ("a", "b", "c", "missing"):
            query = SelectionQuery("id", value)
            assert grouped.get(value, []) == filter_rows(rows, query)

    def test_merge_grouped_is_identical_to_merge_results(self):
        sensitive = [row(rid=1, id="a"), row(rid=2, id="z"), row(rid=6, id="a")]
        non_sensitive = [row(rid=3, id="a"), row(rid=1, id="a"), row(rid=4, id="b")]
        grouped_s = group_rows_by_value(sensitive, "id")
        grouped_ns = group_rows_by_value(non_sensitive, "id")
        for value in ("a", "b", "z", "missing"):
            for projection in (None, ("id",)):
                query = SelectionQuery("id", value, projection=projection)
                assert merge_grouped(query, grouped_s, grouped_ns) == (
                    merge_results(query, sensitive, non_sensitive)
                )
