"""Unit tests for repro.data.relation."""

import pytest

from repro.data.relation import Relation, Row, union_rows
from repro.data.schema import Attribute, Schema
from repro.exceptions import SchemaError, UnknownAttributeError


def people_schema():
    return Schema([Attribute("name"), Attribute("dept")])


def sample_relation():
    relation = Relation("people", people_schema())
    relation.insert({"name": "ann", "dept": "design"})
    relation.insert({"name": "bob", "dept": "defense"}, sensitive=True)
    relation.insert({"name": "ann", "dept": "defense"}, sensitive=True)
    return relation


class TestRow:
    def test_getitem_and_get(self):
        row = Row(rid=1, values={"name": "ann"})
        assert row["name"] == "ann"
        assert row.get("missing", "x") == "x"

    def test_getitem_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            Row(rid=1, values={"name": "ann"})["dept"]

    def test_project_keeps_rid_and_sensitivity(self):
        row = Row(rid=7, values={"name": "ann", "dept": "d"}, sensitive=True)
        projected = row.project(["name"])
        assert projected.rid == 7 and projected.sensitive
        assert projected.as_dict() == {"name": "ann"}

    def test_with_sensitivity_returns_copy(self):
        row = Row(rid=1, values={"name": "ann"})
        flipped = row.with_sensitivity(True)
        assert flipped.sensitive and not row.sensitive


class TestRelation:
    def test_insert_assigns_increasing_rids(self):
        relation = sample_relation()
        assert relation.rids == (0, 1, 2)

    def test_insert_validates_against_schema(self):
        relation = Relation("people", people_schema())
        with pytest.raises(SchemaError):
            relation.insert({"name": "ann"})

    def test_insert_with_explicit_rid_and_duplicate_rejected(self):
        relation = Relation("people", people_schema())
        relation.insert({"name": "ann", "dept": "d"}, rid=10)
        with pytest.raises(SchemaError):
            relation.insert({"name": "bob", "dept": "d"}, rid=10)

    def test_row_lookup_by_rid(self):
        relation = sample_relation()
        assert relation.row(1)["name"] == "bob"
        with pytest.raises(UnknownAttributeError):
            relation.row(99)

    def test_select_equals(self):
        relation = sample_relation()
        assert len(relation.select_equals("name", "ann")) == 2

    def test_select_equals_unknown_attribute(self):
        with pytest.raises(UnknownAttributeError):
            sample_relation().select_equals("nope", "x")

    def test_select_in(self):
        relation = sample_relation()
        rows = relation.select_in("name", {"ann", "bob"})
        assert len(rows) == 3

    def test_select_predicate(self):
        relation = sample_relation()
        rows = relation.select(lambda row: row.sensitive)
        assert {row["dept"] for row in rows} == {"defense"}

    def test_project_returns_new_relation(self):
        projected = sample_relation().project(["name"])
        assert projected.schema.names == ("name",)
        assert len(projected) == 3

    def test_filter_new_preserves_rids(self):
        relation = sample_relation()
        filtered = relation.filter_new("sensitive_only", lambda r: r.sensitive)
        assert filtered.rids == (1, 2)

    def test_value_counts(self):
        counts = sample_relation().value_counts("name")
        assert counts == {"ann": 2, "bob": 1}

    def test_distinct_values_order(self):
        assert sample_relation().distinct_values("dept") == ["design", "defense"]

    def test_extend_and_len(self):
        relation = Relation("people", people_schema())
        relation.extend([{"name": f"p{i}", "dept": "d"} for i in range(5)])
        assert len(relation) == 5

    def test_estimated_size_scales_with_rows(self):
        small = sample_relation().estimated_size_bytes()
        relation = sample_relation()
        relation.insert({"name": "zed", "dept": "d"})
        assert relation.estimated_size_bytes() > small

    def test_to_dicts_round_trip(self):
        dicts = sample_relation().to_dicts()
        rebuilt = Relation.from_dicts("copy", people_schema(), dicts)
        assert rebuilt.value_counts("name") == sample_relation().value_counts("name")


class TestUnionRows:
    def test_union_deduplicates_by_rid(self):
        a = Row(rid=1, values={"name": "ann"})
        b = Row(rid=2, values={"name": "bob"})
        same_as_a = Row(rid=1, values={"name": "ann"})
        merged = union_rows([a, b], [same_as_a])
        assert [row.rid for row in merged] == [1, 2]

    def test_union_preserves_first_seen_order(self):
        rows = [Row(rid=i, values={"name": "x", "dept": "d"}) for i in (3, 1, 2)]
        merged = union_rows(rows)
        assert [row.rid for row in merged] == [3, 1, 2]
