"""Owner-side cache bounds: token-cache and plaintext-cache FIFO eviction.

The engine keeps three per-bin caches on the query path — search tokens,
interned requests, and decrypted plaintexts.  These tests pin the cap
semantics (FIFO eviction at the boundary, ``0`` disables, ``None`` =
unbounded), prove correctness is unaffected by eviction and recomputation,
and prove a rebin (the one event that changes what every cache entry means)
fully invalidates all of them — for all four schemes.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.crypto.primitives import SecretKey
from repro.extensions.inserts import IncrementalInserter
from repro.workloads.generator import generate_partitioned_dataset

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}


def _make_dataset(seed: int = 7):
    return generate_partitioned_dataset(
        num_values=30,
        sensitivity_fraction=0.5,
        association_fraction=0.6,
        tuples_per_value=2,
        seed=seed,
    )


def _make_engine(dataset, scheme_factory, **caps) -> QueryBinningEngine:
    engine = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=scheme_factory(SecretKey.from_passphrase("cache-tests")),
        cloud=CloudServer(),
        rng=random.Random(3),
        **caps,
    )
    return engine.setup()


def _expected_rids(dataset, value) -> List[int]:
    """Ground truth straight off the partitions."""
    attribute = dataset.attribute
    rids = [
        row.rid
        for relation in (dataset.partition.sensitive, dataset.partition.non_sensitive)
        for row in relation.rows
        if row[attribute] == value
    ]
    return sorted(rids)


def _values_in_distinct_sensitive_bins(engine, count: int) -> List[object]:
    """One query value per sensitive bin, for ``count`` different bins."""
    values = []
    for bin_ in engine.layout.sensitive_bins:
        if bin_.values:
            values.append(bin_.values[0])
        if len(values) == count:
            return values
    raise AssertionError(f"layout has fewer than {count} non-empty sensitive bins")


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
class TestCacheCapBoundary:
    def test_fifo_eviction_at_cap(self, scheme_name):
        """With cap=2, the third distinct bin evicts the first-inserted one —
        and every query stays correct through eviction and recomputation."""
        dataset = _make_dataset()
        engine = _make_engine(
            dataset,
            SCHEMES[scheme_name],
            token_cache_bins=2,
            plaintext_cache_bins=2,
        )
        value_a, value_b, value_c = _values_in_distinct_sensitive_bins(engine, 3)
        bins = {
            value: engine.retriever.retrieve(value).sensitive_bin_index
            for value in (value_a, value_b, value_c)
        }

        for value in (value_a, value_b):
            assert sorted(r.rid for r in engine.query(value)) == _expected_rids(
                dataset, value
            )
        assert set(engine._token_cache) == {bins[value_a], bins[value_b]}
        assert set(engine._decrypted_bin_cache) == {bins[value_a], bins[value_b]}

        # third bin crosses the cap: FIFO drops value_a's bin
        assert sorted(r.rid for r in engine.query(value_c)) == _expected_rids(
            dataset, value_c
        )
        assert set(engine._token_cache) == {bins[value_b], bins[value_c]}
        assert set(engine._decrypted_bin_cache) == {bins[value_b], bins[value_c]}
        assert len(engine._request_cache) <= 2  # same cap bounds the requests

        # a hit does not evict; re-querying the evicted bin recomputes
        # correctly and evicts the now-oldest entry
        assert sorted(r.rid for r in engine.query(value_b)) == _expected_rids(
            dataset, value_b
        )
        assert sorted(r.rid for r in engine.query(value_a)) == _expected_rids(
            dataset, value_a
        )
        assert set(engine._token_cache) == {bins[value_c], bins[value_a]}
        assert set(engine._decrypted_bin_cache) == {bins[value_c], bins[value_a]}

    def test_cap_zero_disables_caching(self, scheme_name):
        dataset = _make_dataset()
        engine = _make_engine(
            dataset,
            SCHEMES[scheme_name],
            token_cache_bins=0,
            plaintext_cache_bins=0,
        )
        for value in _values_in_distinct_sensitive_bins(engine, 3):
            assert sorted(r.rid for r in engine.query(value)) == _expected_rids(
                dataset, value
            )
        assert engine._token_cache == {}
        assert engine._request_cache == {}
        assert engine._decrypted_bin_cache == {}

    def test_cap_none_is_unbounded(self, scheme_name):
        dataset = _make_dataset()
        engine = _make_engine(
            dataset,
            SCHEMES[scheme_name],
            token_cache_bins=None,
            plaintext_cache_bins=None,
        )
        values = _values_in_distinct_sensitive_bins(
            engine, engine.layout.num_sensitive_bins
        )
        for value in values:
            assert sorted(r.rid for r in engine.query(value)) == _expected_rids(
                dataset, value
            )
        assert len(engine._token_cache) == len(values)
        assert len(engine._decrypted_bin_cache) == len(values)

    def test_eviction_matches_uncapped_results(self, scheme_name):
        """A thrashing cap (1) and an unbounded cache answer a mixed workload
        identically — eviction can only cost recomputation, never rows."""
        dataset = _make_dataset()
        capped = _make_engine(
            dataset,
            SCHEMES[scheme_name],
            token_cache_bins=1,
            plaintext_cache_bins=1,
        )
        unbounded = _make_engine(
            dataset,
            SCHEMES[scheme_name],
            token_cache_bins=None,
            plaintext_cache_bins=None,
        )
        workload = list(dataset.all_values) * 2
        random.Random(23).shuffle(workload)
        capped_rows = [
            sorted(r.rid for r in rows)
            for rows, _ in capped.execute_workload_with_rows(workload)
        ]
        unbounded_rows = [
            sorted(r.rid for r in rows)
            for rows, _ in unbounded.execute_workload_with_rows(workload)
        ]
        assert capped_rows == unbounded_rows
        assert len(capped._token_cache) <= 1
        assert len(capped._decrypted_bin_cache) <= 1


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
class TestRebinInvalidation:
    def test_rebin_clears_every_owner_cache(self, scheme_name):
        """A rebin re-encrypts and re-bins everything; stale tokens, interned
        requests, or plaintexts would silently answer from the dead layout."""
        dataset = _make_dataset(seed=11)
        engine = _make_engine(dataset, SCHEMES[scheme_name])
        inserter = IncrementalInserter(engine)

        for value in _values_in_distinct_sensitive_bins(engine, 3):
            engine.query(value)
        assert engine._token_cache and engine._decrypted_bin_cache
        assert engine._request_cache

        inserter.rebin()
        assert engine._token_cache == {}
        assert engine._request_cache == {}
        assert engine._decrypted_bin_cache == {}

        # the rebuilt layout answers correctly (fresh tokens/plaintexts)
        for value in _values_in_distinct_sensitive_bins(engine, 3):
            assert sorted(r.rid for r in engine.query(value)) == _expected_rids(
                dataset, value
            )

    def test_sensitive_insert_invalidates(self, scheme_name):
        """A sensitive insert changes owner metadata (address books, counters)
        and bin ciphertexts: every cached token set and plaintext must go."""
        dataset = _make_dataset(seed=13)
        engine = _make_engine(dataset, SCHEMES[scheme_name])
        value = _values_in_distinct_sensitive_bins(engine, 1)[0]
        engine.query(value)
        assert engine._token_cache and engine._decrypted_bin_cache

        template = dict(engine.partition.sensitive.rows[0].values)
        template[engine.attribute] = value
        engine.insert(template, sensitive=True)
        assert engine._token_cache == {}
        assert engine._request_cache == {}
        assert engine._decrypted_bin_cache == {}

        rows = sorted(r.rid for r in engine.query(value))
        assert rows == _expected_rids(dataset, value)
