"""Unit tests for Algorithm 2 (bin retrieval, rules R1/R2)."""

import random

import pytest

from repro.core.binning import create_bins
from repro.core.bins import Bin, BinLayout
from repro.core.retrieval import BinRetriever
from repro.query.selection import SelectionQuery


def figure3_layout():
    """The exact layout of the paper's Figure 3 (no permutation shown)."""
    sensitive = [
        Bin(0, ["s5", "s10"]),
        Bin(1, ["s1", "s6"]),
        Bin(2, ["s2", "s7"]),
        Bin(3, ["s3", "s8"]),
        Bin(4, ["s4", "s9"]),
    ]
    non_sensitive = [
        Bin(0, ["s5", "s1", "s2", "s3", "ns11"]),
        Bin(1, ["ns12", "s6", "ns13", "ns14", "ns15"]),
    ]
    return BinLayout(sensitive, non_sensitive, attribute="A")


class TestFigure3Retrieval:
    def test_query_for_s2_fetches_sb2_and_nsb0(self):
        retriever = BinRetriever(figure3_layout())
        decision = retriever.retrieve("s2")
        assert decision.rule == "R1"
        assert decision.sensitive_bin_index == 2
        assert decision.non_sensitive_bin_index == 0

    def test_query_for_s7_fetches_sb2_and_nsb1(self):
        decision = BinRetriever(figure3_layout()).retrieve("s7")
        assert (decision.sensitive_bin_index, decision.non_sensitive_bin_index) == (2, 1)

    def test_query_for_ns13_fetches_nsb1_and_sb2(self):
        decision = BinRetriever(figure3_layout()).retrieve("ns13")
        assert decision.rule == "R2"
        assert (decision.sensitive_bin_index, decision.non_sensitive_bin_index) == (2, 1)

    def test_adversarial_view_table4(self):
        """Queries for s2, s7, and ns13 all return SB2's encrypted values and
        the appropriate non-sensitive bin — Table IV."""
        retriever = BinRetriever(figure3_layout())
        for value in ("s2", "s7", "ns13"):
            decision = retriever.retrieve(value)
            assert set(decision.sensitive_values) == {"s2", "s7"}

    def test_unknown_value_retrieves_nothing(self):
        decision = BinRetriever(figure3_layout()).retrieve("does-not-exist")
        assert decision.rule == "none"
        assert not decision.retrieves_anything

    def test_rule_consistency_for_associated_values(self):
        """When a value is both sensitive and non-sensitive, R1 and R2 pick
        exactly the same pair of bins."""
        layout = figure3_layout()
        retriever = BinRetriever(layout)
        for value in ("s1", "s2", "s3", "s5", "s6"):
            decision = retriever.retrieve(value)
            s_bin, s_pos = layout.locate_sensitive(value)
            ns_bin, ns_pos = layout.locate_non_sensitive(value)
            assert decision.sensitive_bin_index == s_bin == ns_pos
            assert decision.non_sensitive_bin_index == ns_bin == s_pos


class TestAllBinPairsCovered:
    def test_every_sensitive_bin_meets_every_non_sensitive_bin(self):
        """Answering queries for every value associates each sensitive bin
        with each non-sensitive bin (the Figure 4a completeness property)."""
        retriever = BinRetriever(figure3_layout())
        pairs = set(retriever.associated_bin_pairs())
        assert pairs == {(i, j) for i in range(5) for j in range(2)}

    def test_completeness_holds_for_generated_layouts(self):
        rng = random.Random(3)
        for num_sensitive, num_non_sensitive in [(10, 10), (7, 20), (12, 30), (5, 25)]:
            sensitive = [f"s{i}" for i in range(num_sensitive)]
            associated = sensitive[: num_sensitive // 2]
            non_sensitive = associated + [f"n{i}" for i in range(num_non_sensitive - len(associated))]
            layout = create_bins(sensitive, non_sensitive, rng=rng)
            retriever = BinRetriever(layout)
            pairs = set(retriever.associated_bin_pairs())
            expected = {
                (i, j)
                for i in range(layout.num_sensitive_bins)
                for j in range(layout.num_non_sensitive_bins)
            }
            missing = expected - pairs
            # Every pair reachable by some query value must be covered; pairs
            # can only be missing if no value points at them (tiny layouts).
            assert not missing or all(
                layout.sensitive_bin(i).size == 0 or layout.non_sensitive_bin(j).size == 0
                for i, j in missing
            )


class TestRewrite:
    def test_rewrite_produces_binned_query(self):
        retriever = BinRetriever(figure3_layout())
        binned = retriever.rewrite(SelectionQuery("A", "s2"))
        assert binned.covers_query_value()
        assert set(binned.sensitive_values) == {"s2", "s7"}
        assert set(binned.non_sensitive_values) == {"s5", "s1", "s2", "s3", "ns11"}

    def test_rewrite_unknown_value_is_empty(self):
        binned = BinRetriever(figure3_layout()).rewrite(SelectionQuery("A", "zzz"))
        assert binned.total_requested_values == 0

    def test_all_decisions_cover_every_value_once(self):
        retriever = BinRetriever(figure3_layout())
        decisions = retriever.all_decisions()
        values = [d.query_value for d in decisions]
        assert len(values) == len(set(values)) == 15
