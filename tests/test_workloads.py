"""Tests for the workload substrate (Employee example, generators, TPC-H)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.employee import (
    build_employee_relation,
    employee_partition,
    paper_example_queries,
)
from repro.workloads.generator import (
    derive_stream_seed,
    generate_partitioned_dataset,
    generate_query_stream,
    interleave_operations,
    uniform_counts,
    zipf_counts,
)
from repro.workloads.queries import (
    exhaustive_workload,
    skewed_workload,
    uniform_workload,
    workload_histogram,
)
from repro.workloads.tpch import (
    estimated_metadata_bytes,
    generate_customer,
    generate_lineitem,
)


class TestEmployeeWorkload:
    def test_relation_matches_figure1(self):
        relation = build_employee_relation()
        assert len(relation) == 8
        assert relation.schema.names == ("EId", "FirstName", "LastName", "SSN", "Office", "Dept")

    def test_partition_matches_figure2(self):
        partition = employee_partition()
        assert len(partition.sensitive) == 4
        assert len(partition.non_sensitive) == 4
        assert partition.vertical is not None and len(partition.vertical) == 6

    def test_example_queries(self):
        assert paper_example_queries() == ("E259", "E101", "E199")


class TestGenerators:
    def test_uniform_counts(self):
        counts = uniform_counts(5, 3)
        assert len(counts) == 5 and set(counts.values()) == {3}

    def test_zipf_counts_total_and_skew(self):
        counts = zipf_counts(20, 1000, exponent=1.2)
        assert sum(counts.values()) == 1000
        assert min(counts.values()) >= 1
        values = list(counts.values())
        assert values[0] > values[-1]

    def test_zipf_counts_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_counts(0, 10)
        with pytest.raises(ConfigurationError):
            zipf_counts(10, 5)

    def test_generated_dataset_alpha_and_association(self):
        dataset = generate_partitioned_dataset(
            num_values=50, sensitivity_fraction=0.4, association_fraction=0.5, seed=1
        )
        assert len(dataset.sensitive_counts) == 20
        associated = set(dataset.sensitive_counts) & set(dataset.non_sensitive_counts)
        assert len(associated) == 10
        assert dataset.partition.total_rows == dataset.total_tuples

    def test_generated_dataset_is_deterministic_per_seed(self):
        a = generate_partitioned_dataset(num_values=20, seed=4)
        b = generate_partitioned_dataset(num_values=20, seed=4)
        assert a.sensitive_counts == b.sensitive_counts
        assert a.non_sensitive_counts == b.non_sensitive_counts

    def test_generated_dataset_skewed_counts(self):
        dataset = generate_partitioned_dataset(
            num_values=20, tuples_per_value=10, skew_exponent=1.0, seed=2
        )
        counts = list(dataset.sensitive_counts.values()) + list(
            dataset.non_sensitive_counts.values()
        )
        assert max(counts) > min(counts)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_partitioned_dataset(sensitivity_fraction=2.0)
        with pytest.raises(ConfigurationError):
            generate_partitioned_dataset(association_fraction=-0.1)

    def test_alpha_property(self):
        dataset = generate_partitioned_dataset(
            num_values=40, sensitivity_fraction=0.25, association_fraction=0.0, seed=3
        )
        assert dataset.alpha == pytest.approx(0.25, abs=0.05)


class TestTpch:
    def test_lineitem_shape(self):
        relation = generate_lineitem(num_rows=1000, seed=1)
        assert len(relation) == 1000
        assert "L_PARTKEY" in relation.schema
        assert all(row["L_QUANTITY"] >= 1 for row in relation.rows[:50])

    def test_lineitem_domain_scales(self):
        small = generate_lineitem(num_rows=600, seed=1)
        # SF = 600 / 6M = 1e-4 -> 20 parts
        assert len(small.distinct_values("L_PARTKEY")) <= 20

    def test_customer_shape(self):
        relation = generate_customer(num_rows=200)
        assert len(relation) == 200
        assert len(relation.distinct_values("C_CUSTKEY")) == 200

    def test_invalid_row_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_lineitem(0)
        with pytest.raises(ConfigurationError):
            generate_customer(-1)

    def test_metadata_estimate_tracks_distinct_values(self):
        relation = generate_lineitem(num_rows=2000, seed=1)
        partkey = estimated_metadata_bytes(relation, "L_PARTKEY")
        shipmode = estimated_metadata_bytes(relation, "L_SHIPMODE")
        assert partkey > shipmode  # mirrors the paper's 13.6 MB vs 0.65 MB gap


class TestQueryWorkloads:
    def test_uniform_workload_size_and_domain(self):
        workload = uniform_workload(["a", "b", "c"], 100, seed=1)
        assert len(workload) == 100
        assert set(workload) <= {"a", "b", "c"}

    def test_skewed_workload_is_skewed(self):
        values = [f"v{i}" for i in range(30)]
        workload = skewed_workload(values, 2000, exponent=1.5, seed=2)
        histogram = workload_histogram(workload)
        assert histogram[values[0]] > 2000 / 30

    def test_workloads_validate_inputs(self):
        with pytest.raises(ConfigurationError):
            uniform_workload([], 10)
        with pytest.raises(ConfigurationError):
            skewed_workload(["a"], -1)

    def test_exhaustive_workload_deduplicates(self):
        assert exhaustive_workload(["a", "b", "a", "c"]) == ["a", "b", "c"]


class TestStreamSeeds:
    """Per-stream seed derivation: knobs compose without perturbing each other."""

    def test_derive_stream_seed_is_independent_per_stream_and_seed(self):
        assert derive_stream_seed(7, "inserts") == derive_stream_seed(7, "inserts")
        assert derive_stream_seed(7, "inserts") != derive_stream_seed(7, "other")
        assert derive_stream_seed(7, "inserts") != derive_stream_seed(8, "inserts")

    def test_insert_count_does_not_perturb_base_dataset(self):
        """The determinism regression: enabling a knob must not reshuffle the
        base dataset generated for the same seed."""
        plain = generate_partitioned_dataset(num_values=20, seed=4)
        with_inserts = generate_partitioned_dataset(
            num_values=20, seed=4, insert_count=15
        )
        assert plain.sensitive_counts == with_inserts.sensitive_counts
        assert plain.non_sensitive_counts == with_inserts.non_sensitive_counts
        assert [
            (row.rid, dict(row.values), row.sensitive) for row in plain.relation
        ] == [
            (row.rid, dict(row.values), row.sensitive)
            for row in with_inserts.relation
        ]

    def test_insert_stream_is_deterministic_and_disjoint(self):
        a = generate_partitioned_dataset(num_values=20, seed=4, insert_count=15)
        b = generate_partitioned_dataset(num_values=20, seed=4, insert_count=15)
        assert a.insert_stream == b.insert_stream
        assert len(a.insert_stream) == 15
        base_values = set(a.all_values)
        for values, sensitive in a.insert_stream:
            assert values[a.attribute] not in base_values
            assert isinstance(sensitive, bool)
        other_seed = generate_partitioned_dataset(
            num_values=20, seed=5, insert_count=15
        )
        assert other_seed.insert_stream != a.insert_stream

    def test_insert_stream_defaults_empty_and_validates(self):
        assert generate_partitioned_dataset(num_values=10, seed=1).insert_stream == []
        with pytest.raises(ConfigurationError):
            generate_partitioned_dataset(num_values=10, seed=1, insert_count=-1)


class TestQueryStreams:
    VALUES = [f"v{i}" for i in range(50)]

    def test_streams_are_deterministic_per_seed_and_mix(self):
        for mix in ("uniform", "zipf", "hotkey"):
            first = generate_query_stream(self.VALUES, 200, mix=mix, seed=5)
            second = generate_query_stream(self.VALUES, 200, mix=mix, seed=5)
            assert first == second
        assert generate_query_stream(self.VALUES, 200, seed=5) != (
            generate_query_stream(self.VALUES, 200, seed=6)
        )

    def test_mixes_draw_from_independent_streams(self):
        """Different mixes use different derived seeds, so changing the mix
        never replays another mix's value sequence."""
        uniform = generate_query_stream(self.VALUES, 100, mix="uniform", seed=5)
        zipf = generate_query_stream(self.VALUES, 100, mix="zipf", seed=5)
        assert uniform != zipf

    def test_zipf_mix_skews_towards_low_ranks(self):
        stream = generate_query_stream(
            self.VALUES, 5000, mix="zipf", zipf_exponent=1.2, seed=5
        )
        head = sum(1 for value in stream if value in set(self.VALUES[:5]))
        tail = sum(1 for value in stream if value in set(self.VALUES[-5:]))
        assert head > 4 * tail

    def test_hotkey_mix_concentrates_on_the_working_set(self):
        stream = generate_query_stream(
            self.VALUES, 5000, mix="hotkey",
            hot_fraction=0.1, hot_weight=0.9, seed=5,
        )
        hot = set(self.VALUES[:5])
        hits = sum(1 for value in stream if value in hot)
        assert 0.8 < hits / len(stream) < 1.0

    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_query_stream(self.VALUES, 10, mix="unknown")
        with pytest.raises(ConfigurationError):
            generate_query_stream([], 10)
        with pytest.raises(ConfigurationError):
            generate_query_stream(self.VALUES, -1)
        with pytest.raises(ConfigurationError):
            generate_query_stream(self.VALUES, 10, mix="hotkey", hot_fraction=0.0)


class TestInterleaving:
    def test_merge_contains_every_operation_once(self):
        queries = [f"q{i}" for i in range(30)]
        inserts = [f"i{i}" for i in range(10)]
        merged = interleave_operations(queries, inserts, seed=3)
        assert len(merged) == 40
        assert [item for kind, item in merged if kind == "query"] == queries
        assert [item for kind, item in merged if kind == "insert"] == inserts

    def test_merge_is_deterministic_and_actually_interleaves(self):
        queries = list(range(50))
        inserts = list(range(100, 120))
        first = interleave_operations(queries, inserts, seed=3)
        assert first == interleave_operations(queries, inserts, seed=3)
        kinds = [kind for kind, _item in first]
        # inserts land somewhere inside the query stream, not all at one end
        first_insert = kinds.index("insert")
        last_insert = len(kinds) - 1 - kinds[::-1].index("insert")
        assert first_insert < len(kinds) - 1
        assert last_insert - first_insert > len(inserts)

    def test_empty_streams_are_fine(self):
        assert interleave_operations([], [], seed=1) == []
        assert interleave_operations(["q"], [], seed=1) == [("query", "q")]
        assert interleave_operations([], ["i"], seed=1) == [("insert", "i")]
