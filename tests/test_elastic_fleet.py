"""Elastic fleet: membership churn under load must be unobservable.

The elasticity claim composes the parity and fault-tolerance claims: a fleet
may lose members (crash, wedge), re-replicate the lost slices onto
survivors, retire members gracefully, and admit fresh ones — all between
batches of a sustained workload — and every run across every intermediate
membership returns the same rows, records the same per-query adversarial
information, and aggregates to the same statistics as a healthy fleet.
These tests drive :class:`repro.cloud.lifecycle.FleetLifecycleManager`
through every transition across all four bundled schemes and both member
backends, re-proving the non-collusion invariant and ``replication_factor``-
way redundancy over every ring the fleet passes through.
"""

import time
from itertools import combinations
from types import SimpleNamespace

import pytest

from repro.cloud.lifecycle import FleetLifecycleManager
from repro.cloud.multi_cloud import ShardRouter
from repro.cloud.process_member import process_backend_available
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.data.partition import replica_chain
from repro.exceptions import CloudError, ConfigurationError, MemberTimeout
from repro.owner.db_owner import DBOwner
from repro.workloads.employee import build_employee_relation, employee_policy

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}

pytestmark = [pytest.mark.multicloud, pytest.mark.faults]

process_only = pytest.mark.skipif(
    not process_backend_available(), reason="process backend needs fork start method"
)

BACKENDS = ["thread", pytest.param("process", marks=process_only)]


def fleet_run(harness, engine, workload):
    """One measured sharded run on an existing (possibly churned) engine.

    Resets fleet observations first so the run's views and statistics are
    directly comparable to a healthy single-run reference, and returns a
    :class:`~tests.conftest.StrategyRun`-shaped record the harness
    assertions accept.
    """
    engine.multi_cloud.reset_observations()
    outcome = engine.execute_workload_with_rows(list(workload), placement="sharded")
    return SimpleNamespace(
        placement="sharded",
        engine=engine,
        fleet=engine.multi_cloud,
        cloud=engine.cloud,
        result_rids=[sorted(row.rid for row in rows) for rows, _trace in outcome],
        traces=[trace for _rows, trace in outcome],
    )


def kill_member(fleet, index, backend):
    """Make member ``index`` permanently dead, per backend."""
    if backend == "process":
        proxy = fleet[index]
        proxy._process.kill()
        proxy._process.join(timeout=10)
    else:
        fleet[index].schedule_failure(at_offset=0, failures=1, permanent=True)


# -- routing-layer units ---------------------------------------------------------


class TestLiveMembershipRouting:
    """Pure :class:`ShardRouter` membership semantics, no fleet involved."""

    def make_router(self, live=None, n=5, k=2):
        return ShardRouter(12, 9, n, replication_factor=k, live_members=live)

    def test_explicit_full_membership_is_the_static_router(self):
        static = self.make_router()
        live = self.make_router(live=range(5))
        assert live.replica_assignment() == static.replica_assignment()
        for sensitive_bin in range(12):
            anchor = static.shard_of_sensitive(sensitive_bin)
            assert static.replicas_of_sensitive(sensitive_bin) == replica_chain(
                anchor, 5, 2
            )
            for non_sensitive_bin in range(9):
                assert live.cleartext_candidates(
                    non_sensitive_bin, anchor
                ) == static.cleartext_candidates(non_sensitive_bin, anchor)

    def test_chains_skip_dead_members_and_keep_live_primaries(self):
        dead = 2
        router = self.make_router(live=[0, 1, 3, 4])
        static = self.make_router()
        for sensitive_bin in range(12):
            chain = router.replicas_of_sensitive(sensitive_bin)
            assert len(chain) == 2 == len(set(chain))
            assert dead not in chain
            primary = static.shard_of_sensitive(sensitive_bin)
            if primary != dead:
                # bins anchored on live members never move their primary
                assert chain[0] == primary

    def test_dead_member_cleartext_load_spreads_over_survivors(self):
        """Rendezvous failover: one member's cleartext traffic does not pile
        onto a single deterministic successor."""
        dead = 4
        full = self.make_router()
        degraded = self.make_router(live=[0, 1, 2, 3])
        replacements = set()
        moved = 0
        for sensitive_bin in range(12):
            anchor = full.shard_of_sensitive(sensitive_bin)
            for non_sensitive_bin in range(9):
                before = full.shard_of_non_sensitive(non_sensitive_bin, anchor)
                after = degraded.cleartext_candidates(non_sensitive_bin, anchor)
                assert dead not in after
                if before == dead:
                    moved += 1
                    replacements.add(after[0])
        assert moved > 0
        assert len(replacements) > 1, (
            "every displaced cleartext pick landed on the same survivor"
        )

    def test_disjointness_proved_over_every_membership(self):
        """Chain and cleartext candidates stay live, non-empty, and disjoint
        for every bin pair under every admissible membership subset."""
        memberships = [
            live
            for size in (3, 4, 5)
            for live in combinations(range(5), size)
        ]
        for live in memberships:
            router = self.make_router(live=live)
            for sensitive_bin in [None, *range(12)]:
                chain = router.replicas_of_sensitive(sensitive_bin)
                assert len(chain) == 2
                assert set(chain) <= set(live)
                anchor = (
                    0
                    if sensitive_bin is None
                    else router.shard_of_sensitive(sensitive_bin)
                )
                for non_sensitive_bin in [None, *range(9)]:
                    candidates = router.cleartext_candidates(
                        non_sensitive_bin, anchor
                    )
                    assert candidates, (live, sensitive_bin, non_sensitive_bin)
                    assert set(candidates) <= set(live)
                    assert not set(candidates) & set(chain)

    def test_membership_validation(self):
        with pytest.raises(CloudError, match="outside the"):
            self.make_router(live=[0, 1, 5])
        with pytest.raises(CloudError, match="live members"):
            self.make_router(live=[0, 1])  # k=2 needs at least 3 live

    def test_with_membership_and_rebalanced_preserve_shape(self):
        full = self.make_router()
        shrunk = full.with_membership([0, 2, 3, 4])
        assert shrunk.live_members == frozenset({0, 2, 3, 4})
        assert shrunk.num_shards == 5
        assert shrunk.replication_factor == 2
        grown = shrunk.rebalanced(6, live_members=[0, 2, 3, 4, 5])
        assert grown.num_shards == 6
        assert grown.live_members == frozenset({0, 2, 3, 4, 5})


# -- slice-migration primitives --------------------------------------------------


class TestSlicePrimitives:
    def test_slice_roundtrip_preserves_results_and_accounts_traffic(
        self, fault_harness
    ):
        harness = fault_harness(DeterministicScheme)
        workload = harness.workload(repeats=1)
        engine = harness.make_engine(sharded=True)
        baseline = fleet_run(harness, engine, workload).result_rids

        server = engine.multi_cloud[0]
        downloads_before = server.network.total_tuples("download")
        stored = server.stored_sensitive_bins()
        assert stored, "member 0 should hold at least one bin slice"
        target_bin = sorted(b for b in stored if b is not None)[0]

        rows, assignment = server.sensitive_slice([target_bin])
        assert len(rows) == stored[target_bin]
        assert set(assignment.values()) == {target_bin}

        dropped = server.drop_sensitive_bins([target_bin])
        assert dropped == len(rows)
        assert target_bin not in server.stored_sensitive_bins()

        server.receive_migrated_slice(rows, bin_assignment=assignment)
        assert server.stored_sensitive_bins()[target_bin] == len(rows)

        # migration traffic is charged to its own directions, never download
        assert server.network.total_tuples("migration-out") == len(rows)
        assert server.network.total_tuples("migration-in") == len(rows)
        assert server.network.total_tuples("migration-drop") == len(rows)
        assert server.network.total_tuples("download") == downloads_before

        # the re-installed slice serves queries bit-identically
        assert fleet_run(harness, engine, workload).result_rids == baseline


# -- lifecycle accessors ---------------------------------------------------------


class TestLifecycleAccessors:
    def test_engine_without_fleet_refuses(self, qb_engine):
        with pytest.raises(ConfigurationError, match="MultiCloud"):
            qb_engine.fleet_lifecycle()

    def test_manager_is_cached_and_router_adopted(self, fault_harness):
        harness = fault_harness(DeterministicScheme)
        engine = harness.make_engine(sharded=True)
        manager = engine.fleet_lifecycle()
        assert engine.fleet_lifecycle() is manager
        old_router = engine.shard_router
        manager.add_member()
        assert engine.shard_router is manager.router
        assert engine.shard_router is not old_router

    def test_owner_lifecycle_pass_through(self):
        owner = DBOwner(
            build_employee_relation(),
            employee_policy(),
            num_clouds=4,
            replication_factor=2,
            permutation_seed=7,
        )
        owner.outsource("EId")
        manager = owner.lifecycle_for("EId")
        assert isinstance(manager, FleetLifecycleManager)
        assert manager is owner.lifecycle_for("EId")
        assert manager.prove_non_collusion() > 0
        index, _report = manager.add_member()
        assert index == 4
        engine = owner.engine_for("EId")
        assert engine.shard_router is manager.router
        healthy = [row["LastName"] for row in owner.query("EId", "E259")]
        assert healthy == ["Williams", "Williams"]


# -- membership operations -------------------------------------------------------


class TestMembershipOps:
    def test_graceful_remove_migrates_before_departure(self, fault_harness):
        harness = fault_harness(DeterministicScheme, num_shards=5)
        workload = harness.workload(repeats=1)
        healthy = harness.run("sharded", workload)
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        manager = engine.fleet_lifecycle()

        leaving = 1
        leaving_bins = set(fleet[leaving].stored_sensitive_bins())
        report = manager.remove_member(leaving)

        assert leaving in fleet.departed_members
        assert fleet.live_members == frozenset({0, 2, 3, 4})
        # every slice the leaver held found exactly one new home
        copied = {b for _source, _target, bins in report.copies for b in bins}
        assert copied == leaving_bins
        # no point scrubbing a member that is leaving anyway
        assert all(member != leaving for member, _bins in report.drops)
        # storage matches the shrunk ring everywhere, at full redundancy
        for index in sorted(fleet.live_members):
            for bin_index in fleet[index].stored_sensitive_bins():
                assert index in engine.shard_router.replicas_of_sensitive(bin_index)
        assert set(manager.replication_health().values()) == {2}
        manager.prove_non_collusion()

        run = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, run)

    def test_add_member_copies_only_reassigned_bins(self, fault_harness):
        harness = fault_harness(DeterministicScheme, num_shards=4)
        workload = harness.workload(repeats=1)
        healthy = harness.run("sharded", workload)
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        manager = engine.fleet_lifecycle()
        old_router = manager.router
        old_chains = {
            bin_index: set(old_router.replicas_of_sensitive(bin_index))
            for bin_index in range(old_router.num_sensitive_bins)
        }

        index, report = manager.add_member()
        assert index == 4
        assert fleet.live_members == frozenset(range(5))
        new_router = manager.router
        for _source, target, bins in report.copies:
            for bin_index in bins:
                new_chain = set(new_router.replicas_of_sensitive(bin_index))
                assert target in new_chain
                # only chains that actually changed moved any data
                assert new_chain != old_chains.get(bin_index, new_chain - {target})
        assert set(manager.replication_health().values()) == {2}
        run = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, run)

    def test_replace_member_restores_slot(self, fault_harness):
        harness = fault_harness(DeterministicScheme, num_shards=4)
        workload = harness.workload(repeats=1)
        healthy = harness.run("sharded", workload)
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        manager = engine.fleet_lifecycle()

        victim, _load = harness.busiest_member(healthy, workload)
        kill_member(fleet, victim, "thread")
        degraded = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, degraded)
        assert victim in fleet.failed_members

        manager.replace_member(victim)
        assert victim not in fleet.failed_members
        assert victim not in fleet.departed_members
        assert not getattr(fleet[victim], "dead", False)
        assert set(manager.replication_health().values()) == {2}
        run = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, run)

    def test_remove_refused_below_replication_floor(self, fault_harness):
        harness = fault_harness(DeterministicScheme, num_shards=3)
        engine = harness.make_engine(sharded=True)
        manager = engine.fleet_lifecycle()
        with pytest.raises(CloudError, match="live members"):
            manager.remove_member(0)
        # the refused transition left the fleet untouched
        assert engine.multi_cloud.live_members == frozenset(range(3))
        assert not engine.multi_cloud.departed_members

    def test_departed_slot_is_never_readmitted(self, fault_harness):
        harness = fault_harness(DeterministicScheme, num_shards=5)
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        manager = engine.fleet_lifecycle()
        manager.remove_member(2)
        with pytest.raises(CloudError, match="departed"):
            fleet.mark_recovered(2)
        with pytest.raises(CloudError, match="already departed"):
            manager.remove_member(2)
        # the all-member sweep skips (rather than trips over) the tombstone
        fleet.failed_members.add(2)
        fleet.mark_all_recovered()
        assert 2 in fleet.failed_members


# -- full elastic cycle across schemes and backends ------------------------------


class TestElasticCycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES), ids=sorted(SCHEMES))
    def test_kill_restore_join_cycle_is_unobservable(
        self, fault_harness, scheme_name, backend
    ):
        """Kill the busiest member mid-workload, re-replicate onto the
        survivors, then grow the fleet — every run stays bit-identical to
        the healthy reference and every ring keeps the invariants."""
        harness = fault_harness(
            SCHEMES[scheme_name], num_shards=5, member_backend=backend
        )
        workload = harness.workload(repeats=1)
        healthy = harness.run("sharded", workload)

        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        manager = engine.fleet_lifecycle()
        rings = [manager.router]
        assert manager.prove_non_collusion() > 0

        victim, _load = harness.busiest_member(healthy, workload)
        victim_bins = set(fleet[victim].stored_sensitive_bins())

        kill_member(fleet, victim, backend)
        degraded = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, degraded)
        assert victim in fleet.failed_members

        report = manager.restore_redundancy()
        rings.append(manager.router)
        assert victim in fleet.departed_members
        assert fleet.live_members == frozenset(range(5)) - {victim}
        # exactly the victim's slices were re-homed, each to one new member
        copied = {b for _source, _target, bins in report.copies for b in bins}
        assert copied == victim_bins
        health = manager.replication_health()
        assert health and set(health.values()) == {2}
        restored = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, restored)

        index, _join_report = manager.add_member()
        rings.append(manager.router)
        assert index == 5
        assert set(manager.replication_health().values()) == {2}
        grown = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, grown)

        # the invariant held on every ring the fleet passed through
        for ring in rings:
            assert manager.prove_non_collusion(ring) > 0
        assert len(manager.history) == 2


# -- RPC deadlines and health probes (process backend only) ----------------------


@process_only
class TestRpcDeadlines:
    def test_wedged_member_times_out_and_fails_over(self, fault_harness):
        harness = fault_harness(
            DeterministicScheme,
            member_backend="process",
            rpc_timeout=1.0,
            member_retries=0,
        )
        workload = harness.workload(repeats=1)
        healthy = harness.run("sharded", workload)
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud

        victim, _load = harness.busiest_member(healthy, workload)
        fleet[victim].schedule_stall(forever=True)
        started = time.monotonic()
        run = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, run)
        # the deadline reaped the wedge: no 3600s sleep leaked into the run
        assert time.monotonic() - started < 30.0
        assert victim in fleet.failed_members
        assert fleet[victim].closed
        assert isinstance(fleet._member_errors[victim], MemberTimeout)
        # an abandoned worker is not re-admittable — only replaceable
        with pytest.raises(CloudError, match="abandoned"):
            fleet.mark_recovered(victim)
        fleet.mark_all_recovered()
        assert victim in fleet.failed_members

    def test_slow_member_is_not_failed_over(self, fault_harness):
        """Finite latency is not a failure: generous deadlines must let a
        slow-but-progressing member answer."""
        harness = fault_harness(
            DeterministicScheme, member_backend="process", rpc_timeout=30.0
        )
        workload = harness.workload(repeats=1)
        healthy = harness.run("sharded", workload)
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud

        victim, _load = harness.busiest_member(healthy, workload)
        fleet[victim].schedule_stall(seconds=0.2, stalls=1)
        run = fleet_run(harness, engine, workload)
        harness.assert_degraded_parity(healthy, run)
        assert not fleet.failed_members
        assert not fleet[victim].closed

    def test_probe_detects_dead_worker_and_excludes_it(self, fault_harness):
        harness = fault_harness(DeterministicScheme, member_backend="process")
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        manager = engine.fleet_lifecycle(probe_timeout=5.0)

        assert manager.probe() == {index: True for index in range(4)}

        kill_member(fleet, 2, "process")
        health = manager.probe()
        assert health[2] is False
        assert all(health[index] for index in (0, 1, 3))
        assert 2 in fleet.failed_members
        # probing again does not re-admit the excluded member
        health = manager.probe()
        assert health[2] is False
        assert 2 in fleet.failed_members

    def test_close_does_not_hang_on_wedged_worker(self, fault_harness):
        harness = fault_harness(
            DeterministicScheme, member_backend="process", rpc_timeout=1.0
        )
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        fleet[1].schedule_stall(forever=True)
        # the wedge fires on the next batch; the deadline abandons the worker
        with pytest.raises(MemberTimeout):
            fleet[1].process_batch([])
        assert fleet[1].closed
        started = time.monotonic()
        fleet.close()
        assert time.monotonic() - started < 10.0


# -- the scripted churn scenario -------------------------------------------------


@pytest.mark.chaos
@process_only
class TestChurnScenario:
    def test_scripted_churn_under_sustained_load(self, fault_harness):
        """The acceptance scenario: wedge one member, kill another,
        re-replicate onto the survivors, join a fresh member — under a
        sustained workload, with zero wrong results, bit-identical
        observables, and the non-collusion proof over every intermediate
        ring."""
        harness = fault_harness(
            DeterministicScheme,
            num_shards=5,
            member_backend="process",
            rpc_timeout=2.0,
        )
        workload = harness.workload()
        healthy = harness.run("sharded", workload)

        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        manager = engine.fleet_lifecycle(probe_timeout=2.0)
        rings = [manager.router]

        def sustained_phase(description):
            run = fleet_run(harness, engine, workload)
            assert run.result_rids == healthy.result_rids, description
            harness.assert_degraded_parity(healthy, run)
            return run

        sustained_phase("healthy baseline")

        # phase 1: member 0 wedges mid-workload; the RPC deadline reaps it
        fleet[0].schedule_stall(forever=True)
        sustained_phase("wedged member failed over")
        assert 0 in fleet.failed_members
        # the deadline abandoned the wedged worker (the recorded exclusion
        # error is the retry's "process is down" follow-up, a MemberFailure;
        # the MemberTimeout itself is pinned in TestRpcDeadlines)
        assert fleet[0].closed

        # phase 2: member 2 dies outright (no goodbye, SIGKILL)
        kill_member(fleet, 2, "process")
        sustained_phase("killed member failed over")
        assert 2 in fleet.failed_members

        # phase 3: probes confirm the picture, losses are made permanent,
        # and redundancy is rebuilt from the survivors
        health = manager.probe()
        assert {index for index, ok in health.items() if not ok} == {0, 2}
        manager.restore_redundancy()
        rings.append(manager.router)
        assert fleet.departed_members == {0, 2}
        assert fleet.live_members == frozenset({1, 3, 4})
        assert set(manager.replication_health().values()) == {2}
        sustained_phase("after re-replication")

        # phase 4: a fresh member joins and takes over its share of slices
        index, _report = manager.add_member()
        rings.append(manager.router)
        assert index == 5
        assert fleet.live_members == frozenset({1, 3, 4, 5})
        assert set(manager.replication_health().values()) == {2}
        sustained_phase("after join")

        # the placement invariant held on every ring the fleet crossed
        for ring in rings:
            assert manager.prove_non_collusion(ring) > 0
        assert len(manager.history) == 2
