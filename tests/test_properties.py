"""Property-based tests (hypothesis) for the core invariants.

These cover the invariants the paper's correctness and security arguments
rest on:

* approximately-square factorisation invariants;
* bin creation places every value exactly once and keeps the transposed
  association placement;
* Algorithm 2 retrieval always returns bins that contain the queried value;
* answering queries for every domain value associates every sensitive bin
  with every non-sensitive bin (surviving-match completeness);
* general-case padding makes every sensitive bin's tuple count identical;
* encryption round-trips and the keyed permutation being a permutation;
* the analytical model's monotonicity in α and γ.
"""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.surviving_matches import SurvivingMatchAnalysis
from repro.core.binning import create_bins
from repro.core.factors import approx_square_factors, factor_candidates, nearest_square
from repro.core.general_binning import create_general_bins
from repro.core.retrieval import BinRetriever
from repro.crypto.primitives import (
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    keyed_permutation,
)
from repro.model.cost import eta_simplified
from repro.model.parameters import CostParameters

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# factorisation
# ---------------------------------------------------------------------------

@SETTINGS
@given(n=st.integers(min_value=1, max_value=20_000))
def test_approx_square_factors_invariants(n):
    x, y = approx_square_factors(n)
    assert x * y == n
    assert x >= y >= 1
    assert y <= math.isqrt(n) <= x


@SETTINGS
@given(n=st.integers(min_value=1, max_value=20_000))
def test_nearest_square_is_nearest(n):
    square = nearest_square(n)
    root = math.isqrt(square)
    assert root * root == square
    below = math.isqrt(n) ** 2
    above = (math.isqrt(n) + 1) ** 2
    assert abs(square - n) == min(abs(below - n), abs(above - n))


@SETTINGS
@given(
    num_non_sensitive=st.integers(min_value=1, max_value=2_000),
    num_sensitive=st.integers(min_value=0, max_value=2_000),
)
def test_factor_candidates_always_feasible(num_non_sensitive, num_sensitive):
    num_sensitive = min(num_sensitive, num_non_sensitive)
    for sensitive_bins, non_sensitive_bins in factor_candidates(
        num_non_sensitive, num_sensitive
    ):
        sensitive_width = math.ceil(num_sensitive / sensitive_bins) if num_sensitive else 0
        non_sensitive_width = math.ceil(num_non_sensitive / non_sensitive_bins)
        assert sensitive_width <= non_sensitive_bins
        assert non_sensitive_width <= sensitive_bins


# ---------------------------------------------------------------------------
# bin creation / retrieval
# ---------------------------------------------------------------------------

@st.composite
def binning_instance(draw):
    """Random |S|, |NS| and association fraction for base-case binning."""
    num_sensitive = draw(st.integers(min_value=0, max_value=60))
    num_non_sensitive = draw(st.integers(min_value=max(1, num_sensitive), max_value=90))
    num_associated = draw(st.integers(min_value=0, max_value=num_sensitive))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    sensitive = [f"s{i}" for i in range(num_sensitive)]
    associated = sensitive[:num_associated]
    non_sensitive = associated + [
        f"n{i}" for i in range(num_non_sensitive - num_associated)
    ]
    return sensitive, non_sensitive, seed


@SETTINGS
@given(instance=binning_instance())
def test_create_bins_places_every_value_once(instance):
    sensitive, non_sensitive, seed = instance
    layout = create_bins(sensitive, non_sensitive, rng=random.Random(seed))
    assert sorted(layout.sensitive_values) == sorted(set(sensitive))
    assert sorted(layout.non_sensitive_values) == sorted(set(non_sensitive))
    layout.validate()


@SETTINGS
@given(instance=binning_instance())
def test_retrieval_bins_always_contain_the_query_value(instance):
    sensitive, non_sensitive, seed = instance
    layout = create_bins(sensitive, non_sensitive, rng=random.Random(seed))
    retriever = BinRetriever(layout)
    for value in set(sensitive) | set(non_sensitive):
        decision = retriever.retrieve(value)
        assert decision.retrieves_anything
        in_sensitive = value in decision.sensitive_values
        in_non_sensitive = value in decision.non_sensitive_values
        assert in_sensitive or in_non_sensitive
        # and whenever the value exists on a side, that side's bin holds it
        if value in set(sensitive):
            assert in_sensitive
        if value in set(non_sensitive):
            assert in_non_sensitive


@SETTINGS
@given(instance=binning_instance())
def test_full_domain_queries_preserve_all_surviving_matches(instance):
    sensitive, non_sensitive, seed = instance
    if not sensitive or not non_sensitive:
        return
    layout = create_bins(sensitive, non_sensitive, rng=random.Random(seed))
    analysis = SurvivingMatchAnalysis.from_layout(layout)
    # Pairs can only be missed if one of the two bins holds no values at all.
    for i, j in analysis.dropped_pairs():
        assert (
            layout.sensitive_bin(i).size == 0 or layout.non_sensitive_bin(j).size == 0
        )


@SETTINGS
@given(
    counts=st.dictionaries(
        keys=st.integers(min_value=0, max_value=200),
        values=st.integers(min_value=1, max_value=50),
        min_size=1,
        max_size=40,
    ),
    num_non_sensitive=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_general_binning_pads_to_equal_tuple_counts(counts, num_non_sensitive, seed):
    sensitive_counts = {f"s{k}": v for k, v in counts.items()}
    non_sensitive_counts = {f"n{i}": 1 for i in range(num_non_sensitive)}
    result = create_general_bins(
        sensitive_counts, non_sensitive_counts, rng=random.Random(seed)
    )
    padded = {
        index: result.tuples_per_bin[index] + result.fake_tuples[index]
        for index in result.tuples_per_bin
    }
    non_empty = {
        index: total
        for index, total in padded.items()
        if result.layout.sensitive_bin(index).size > 0 or result.tuples_per_bin[index] > 0
    }
    if non_empty:
        assert len(set(non_empty.values())) == 1
    assert all(fake >= 0 for fake in result.fake_tuples.values())
    result.layout.validate()


# ---------------------------------------------------------------------------
# crypto primitives
# ---------------------------------------------------------------------------

@SETTINGS
@given(payload=st.binary(min_size=0, max_size=512), passphrase=st.text(min_size=1, max_size=16))
def test_aead_round_trip(payload, passphrase):
    key = SecretKey.from_passphrase(passphrase)
    assert aead_decrypt(key, aead_encrypt(key, payload)) == payload


@SETTINGS
@given(
    items=st.lists(st.integers(), min_size=0, max_size=200, unique=True),
    passphrase=st.text(min_size=1, max_size=16),
)
def test_keyed_permutation_is_a_permutation(items, passphrase):
    permuted = keyed_permutation(items, SecretKey.from_passphrase(passphrase))
    assert sorted(permuted) == sorted(items)


# ---------------------------------------------------------------------------
# analytical model
# ---------------------------------------------------------------------------

@SETTINGS
@given(
    alpha_pair=st.tuples(
        st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0)
    ),
    gamma=st.floats(min_value=1.0, max_value=1e6),
    width=st.integers(min_value=1, max_value=10_000),
    rho=st.floats(min_value=0.001, max_value=1.0),
)
def test_eta_monotone_in_alpha(alpha_pair, gamma, width, rho):
    low, high = sorted(alpha_pair)
    params = CostParameters.from_ratios(gamma=gamma, selectivity=rho)
    assert eta_simplified(low, width, width, params) <= eta_simplified(
        high, width, width, params
    ) + 1e-12


@SETTINGS
@given(
    gamma_pair=st.tuples(
        st.floats(min_value=1.0, max_value=1e6), st.floats(min_value=1.0, max_value=1e6)
    ),
    alpha=st.floats(min_value=0.0, max_value=1.0),
    width=st.integers(min_value=1, max_value=10_000),
    rho=st.floats(min_value=0.001, max_value=1.0),
)
def test_eta_monotone_decreasing_in_gamma(gamma_pair, alpha, width, rho):
    low, high = sorted(gamma_pair)
    eta_low_gamma = eta_simplified(
        alpha, width, width, CostParameters.from_ratios(gamma=low, selectivity=rho)
    )
    eta_high_gamma = eta_simplified(
        alpha, width, width, CostParameters.from_ratios(gamma=high, selectivity=rho)
    )
    assert eta_high_gamma <= eta_low_gamma + 1e-12
