"""Unit tests for the encrypted-search schemes (shared behaviour + leakage)."""

import pytest

from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.base import EncryptedRow
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.data.relation import Relation, Row
from repro.data.schema import Attribute, Schema

ALL_SCHEMES = [NonDeterministicScheme, DeterministicScheme, SSEScheme, ArxIndexScheme]


def sample_rows():
    schema = Schema([Attribute("key"), Attribute("payload")])
    relation = Relation("r", schema)
    for i, key in enumerate(["a", "b", "a", "c", "b", "a"]):
        relation.insert(
            {"key": key, "payload": f"confidential-payload-{i}"}, sensitive=True
        )
    return list(relation.rows)


@pytest.mark.parametrize("scheme_cls", ALL_SCHEMES)
class TestSchemeContract:
    """Behaviour every EncryptedSearchScheme must satisfy."""

    def test_search_returns_exactly_matching_rows(self, scheme_cls):
        scheme = scheme_cls()
        rows = sample_rows()
        stored = scheme.encrypt_rows(rows, "key")
        tokens = scheme.tokens_for_values(["a"], "key")
        matches = scheme.search(stored, tokens)
        expected_rids = {r.rid for r in rows if r["key"] == "a"}
        assert {m.rid for m in matches} == expected_rids

    def test_multi_value_search_unions_matches(self, scheme_cls):
        scheme = scheme_cls()
        rows = sample_rows()
        stored = scheme.encrypt_rows(rows, "key")
        tokens = scheme.tokens_for_values(["a", "c"], "key")
        matches = scheme.search(stored, tokens)
        expected = {r.rid for r in rows if r["key"] in {"a", "c"}}
        assert {m.rid for m in matches} == expected

    def test_search_for_absent_value_returns_nothing(self, scheme_cls):
        scheme = scheme_cls()
        stored = scheme.encrypt_rows(sample_rows(), "key")
        tokens = scheme.tokens_for_values(["zzz"], "key")
        assert scheme.search(stored, tokens) == []

    def test_decrypt_recovers_original_values(self, scheme_cls):
        scheme = scheme_cls()
        rows = sample_rows()
        stored = scheme.encrypt_rows(rows, "key")
        decrypted = scheme.decrypt_rows(stored)
        assert sorted(r.rid for r in decrypted) == sorted(r.rid for r in rows)
        by_rid = {r.rid: r for r in decrypted}
        for row in rows:
            assert by_rid[row.rid].as_dict() == row.as_dict()

    def test_ciphertext_does_not_contain_plaintext(self, scheme_cls):
        scheme = scheme_cls()
        stored = scheme.encrypt_rows(sample_rows(), "key")
        for encrypted in stored:
            assert b"confidential-payload" not in encrypted.ciphertext

    def test_fake_rows_are_dropped_on_decryption(self, scheme_cls):
        scheme = scheme_cls()
        rows = sample_rows()
        scheme.encrypt_rows(rows, "key")
        fake = scheme.make_fake_row("key", rows[0])
        assert fake.is_fake
        assert scheme.decrypt_rows([fake]) == []

    def test_leakage_profile_names_scheme(self, scheme_cls):
        scheme = scheme_cls()
        assert scheme.leakage.name == scheme.name
        assert isinstance(scheme.leakage.vulnerable_attacks(), tuple)


class TestNonDeterministicSpecifics:
    def test_ciphertexts_are_probabilistic(self):
        scheme = NonDeterministicScheme()
        rows = sample_rows()
        first = scheme.encrypt_rows(rows, "key")
        second_scheme_pass = scheme.encrypt_rows(rows, "key")
        assert first[0].ciphertext != second_scheme_pass[0].ciphertext

    def test_no_search_tags_stored(self):
        scheme = NonDeterministicScheme()
        stored = scheme.encrypt_rows(sample_rows(), "key")
        assert all(row.search_tag == b"" for row in stored)

    def test_owner_metadata_tracks_values(self):
        scheme = NonDeterministicScheme()
        scheme.encrypt_rows(sample_rows(), "key")
        assert set(scheme.known_values("key")) == {"a", "b", "c"}

    def test_forget_metadata_disables_search(self):
        scheme = NonDeterministicScheme()
        stored = scheme.encrypt_rows(sample_rows(), "key")
        scheme.forget_metadata("key")
        assert scheme.tokens_for_values(["a"], "key") == []


class TestDeterministicSpecifics:
    def test_equal_values_share_tags(self):
        scheme = DeterministicScheme()
        stored = scheme.encrypt_rows(sample_rows(), "key")
        tags = [r.search_tag for r in stored]
        assert tags[0] == tags[2] == tags[5]  # the three "a" rows
        assert tags[0] != tags[1]

    def test_frequency_histogram_visible_in_tags(self):
        scheme = DeterministicScheme()
        stored = scheme.encrypt_rows(sample_rows(), "key")
        from collections import Counter

        histogram = sorted(Counter(r.search_tag for r in stored).values(), reverse=True)
        assert histogram == [3, 2, 1]

    def test_leakage_declares_frequency(self):
        assert DeterministicScheme().leakage.leaks_frequency


class TestSSESpecifics:
    def test_ciphertext_tags_differ_for_equal_values(self):
        scheme = SSEScheme()
        stored = scheme.encrypt_rows(sample_rows(), "key")
        assert stored[0].search_tag != stored[2].search_tag

    def test_leakage_hides_frequency_at_rest(self):
        assert not SSEScheme().leakage.leaks_frequency


class TestArxSpecifics:
    def test_counter_tags_are_unique(self):
        scheme = ArxIndexScheme()
        stored = scheme.encrypt_rows(sample_rows(), "key")
        assert len({r.search_tag for r in stored}) == len(stored)

    def test_occurrence_counters_track_frequencies(self):
        scheme = ArxIndexScheme()
        scheme.encrypt_rows(sample_rows(), "key")
        assert scheme.occurrence_count("key", "a") == 3
        assert scheme.occurrence_count("key", "b") == 2
        assert scheme.occurrence_count("key", "missing") == 0

    def test_token_count_matches_occurrences(self):
        scheme = ArxIndexScheme()
        scheme.encrypt_rows(sample_rows(), "key")
        assert len(scheme.tokens_for_values(["a"], "key")) == 3
        assert len(scheme.tokens_for_values(["a", "b"], "key")) == 5
