"""Unit tests for Algorithm 1 (base-case bin creation)."""

import math
import random

import pytest

from repro.core.binning import create_bins, create_bins_with_layout_choice
from repro.core.factors import approx_square_factors
from repro.crypto.primitives import SecretKey
from repro.exceptions import BinningError


def rng():
    return random.Random(99)


class TestCreateBinsStructure:
    def test_paper_matrix_example_16_values(self):
        """16 associated values -> a 4x4 layout (the paper's matrix example)."""
        values = [str(v) for v in range(16)]
        layout = create_bins(values, values, rng=rng())
        assert layout.num_sensitive_bins == 4
        assert layout.num_non_sensitive_bins == 4
        assert layout.max_sensitive_bin_size == 4
        assert layout.max_non_sensitive_bin_size == 4

    def test_paper_example3_10_values(self):
        """10 sensitive / 10 non-sensitive values -> 5 sensitive bins of 2 and
        2 non-sensitive bins of 5 (Figure 3)."""
        sensitive = [f"s{i}" for i in range(1, 11)]
        non_sensitive = [f"s{i}" for i in (1, 2, 3, 5, 6)] + [
            f"ns{i}" for i in (11, 12, 13, 14, 15)
        ]
        layout = create_bins(sensitive, non_sensitive, rng=rng())
        assert layout.num_sensitive_bins == 5
        assert layout.num_non_sensitive_bins == 2
        assert layout.max_sensitive_bin_size == 2
        assert layout.max_non_sensitive_bin_size == 5

    def test_all_values_placed_exactly_once(self):
        sensitive = [f"s{i}" for i in range(13)]
        non_sensitive = [f"n{i}" for i in range(29)]
        layout = create_bins(sensitive, non_sensitive, rng=rng())
        assert sorted(layout.sensitive_values) == sorted(sensitive)
        assert sorted(layout.non_sensitive_values) == sorted(non_sensitive)

    def test_layout_validates_itself(self):
        sensitive = [f"v{i}" for i in range(8)]
        non_sensitive = [f"v{i}" for i in range(20)]
        layout = create_bins(sensitive, non_sensitive, rng=rng())
        layout.validate()

    def test_duplicate_inputs_are_deduplicated(self):
        layout = create_bins(["a", "a", "b"], ["c", "c", "d"], rng=rng())
        assert sorted(layout.sensitive_values) == ["a", "b"]
        assert sorted(layout.non_sensitive_values) == ["c", "d"]

    def test_explicit_layout_respected(self):
        sensitive = [f"s{i}" for i in range(6)]
        non_sensitive = [f"n{i}" for i in range(12)]
        layout = create_bins(
            sensitive, non_sensitive, num_sensitive_bins=3, num_non_sensitive_bins=4, rng=rng()
        )
        assert layout.num_sensitive_bins == 3
        assert layout.num_non_sensitive_bins == 4

    def test_no_values_at_all_rejected(self):
        with pytest.raises(BinningError):
            create_bins([], [], rng=rng())

    def test_only_sensitive_values_supported(self):
        layout = create_bins([f"s{i}" for i in range(5)], [], rng=rng())
        assert sorted(layout.sensitive_values) == [f"s{i}" for i in range(5)]
        assert layout.non_sensitive_values == ()

    def test_only_non_sensitive_values_supported(self):
        layout = create_bins([], [f"n{i}" for i in range(9)], rng=rng())
        assert layout.num_sensitive_bins == 3
        assert len(layout.non_sensitive_values) == 9

    def test_invalid_bin_counts_rejected(self):
        with pytest.raises(BinningError):
            create_bins(["a"], ["b"], num_sensitive_bins=0, rng=rng())
        with pytest.raises(BinningError):
            create_bins(["a"], ["b"], num_non_sensitive_bins=0, rng=rng())


class TestAssociationPlacement:
    def test_associated_values_are_transposed(self):
        """The partner of the j-th value of sensitive bin i must live in
        non-sensitive bin j at position i."""
        values = [str(v) for v in range(25)]
        layout = create_bins(values, values, rng=rng())
        for value in values:
            s_bin, s_pos = layout.locate_sensitive(value)
            ns_bin, ns_pos = layout.locate_non_sensitive(value)
            assert ns_bin == s_pos
            assert ns_pos == s_bin

    def test_partial_association(self):
        sensitive = [f"s{i}" for i in range(10)]
        associated = sensitive[:4]
        non_sensitive = associated + [f"n{i}" for i in range(6)]
        layout = create_bins(sensitive, non_sensitive, rng=rng())
        for value in associated:
            s_bin, s_pos = layout.locate_sensitive(value)
            ns_bin, _ = layout.locate_non_sensitive(value)
            assert ns_bin == s_pos

    def test_permutation_key_changes_layout(self):
        values = [str(v) for v in range(30)]
        layout_a = create_bins(values, values, permutation_key=SecretKey.from_passphrase("a"))
        layout_b = create_bins(values, values, permutation_key=SecretKey.from_passphrase("b"))
        bins_a = [bin_.values for bin_ in layout_a.sensitive_bins]
        bins_b = [bin_.values for bin_ in layout_b.sensitive_bins]
        assert bins_a != bins_b

    def test_same_key_reproduces_layout(self):
        values = [str(v) for v in range(30)]
        key = SecretKey.from_passphrase("stable")
        layout_a = create_bins(values, values, permutation_key=key)
        layout_b = create_bins(values, values, permutation_key=key)
        assert [b.values for b in layout_a.sensitive_bins] == [
            b.values for b in layout_b.sensitive_bins
        ]


class TestLayoutChoice:
    def test_bad_factorisation_falls_back_to_square(self):
        """The paper's 41/82 example: the exact factorisation (41x2) retrieves
        1 + 41 values per query, the 9x9-ish square layout far fewer."""
        sensitive = [f"s{i}" for i in range(41)]
        non_sensitive = [f"s{i}" for i in range(20)] + [f"n{i}" for i in range(62)]
        layout = create_bins_with_layout_choice(sensitive, non_sensitive, rng=rng())
        per_query = layout.max_sensitive_bin_size + layout.max_non_sensitive_bin_size
        assert per_query < 1 + 41

    def test_square_layout_keeps_all_pairs_covered(self):
        from repro.core.binning import layout_covers_all_bin_pairs

        sensitive = [f"s{i}" for i in range(41)]
        non_sensitive = [f"s{i}" for i in range(20)] + [f"n{i}" for i in range(62)]
        layout = create_bins_with_layout_choice(sensitive, non_sensitive, rng=rng())
        assert layout_covers_all_bin_pairs(layout)

    def test_choice_falls_back_to_exact_when_square_uncoverable(self):
        """When every sensitive value is associated, the nearest-square layout
        cannot keep all bin pairs covered, so the exact factorisation is used
        even though it is wider."""
        from repro.core.binning import layout_covers_all_bin_pairs

        sensitive = [f"v{i}" for i in range(41)]
        non_sensitive = [f"v{i}" for i in range(41)] + [f"n{i}" for i in range(41)]
        layout = create_bins_with_layout_choice(sensitive, non_sensitive, rng=rng())
        assert layout_covers_all_bin_pairs(layout)

    def test_choice_matches_plain_create_for_square_counts(self):
        values = [str(v) for v in range(36)]
        chosen = create_bins_with_layout_choice(values, values, rng=rng())
        assert chosen.num_sensitive_bins == 6
        assert chosen.num_non_sensitive_bins == 6

    def test_bin_width_scales_as_sqrt(self):
        for count in (25, 64, 100, 225):
            values = [str(v) for v in range(count)]
            layout = create_bins_with_layout_choice(values, values, rng=rng())
            assert layout.max_non_sensitive_bin_size <= math.isqrt(count) + 2
