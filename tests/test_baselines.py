"""Tests for the comparison baselines (full encryption, Opaque, Jana, DET)."""

import pytest

from repro.baselines.cryptdb_sim import DeterministicStoreBaseline
from repro.baselines.full_encryption import FullEncryptionBaseline
from repro.baselines.jana_sim import JanaSimulator
from repro.baselines.opaque_sim import OpaqueSimulator
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.exceptions import ConfigurationError
from repro.workloads.generator import generate_partitioned_dataset


@pytest.fixture
def small_relation():
    return generate_partitioned_dataset(
        num_values=20, sensitivity_fraction=0.5, tuples_per_value=2, seed=9
    ).relation


class TestFullEncryptionBaseline:
    def test_queries_are_answered_correctly(self, small_relation):
        baseline = FullEncryptionBaseline(
            small_relation, "key", NonDeterministicScheme()
        ).setup()
        value = small_relation.distinct_values("key")[0]
        rows = baseline.query(value)
        expected = {r.rid for r in small_relation if r["key"] == value}
        assert {r.rid for r in rows} == expected

    def test_requires_setup(self, small_relation):
        baseline = FullEncryptionBaseline(small_relation, "key", NonDeterministicScheme())
        with pytest.raises(ConfigurationError):
            baseline.query("x")

    def test_trace_reports_full_scan_and_model_cost(self, small_relation):
        baseline = FullEncryptionBaseline(
            small_relation, "key", NonDeterministicScheme()
        ).setup()
        _rows, trace = baseline.query_with_trace(small_relation.distinct_values("key")[0])
        assert trace.tuples_scanned == len(small_relation)
        assert trace.modelled_seconds > 0

    def test_modelled_cost_scales_with_relation_size(self, small_relation):
        small = FullEncryptionBaseline(
            small_relation, "key", NonDeterministicScheme()
        ).setup()
        bigger_relation = generate_partitioned_dataset(
            num_values=200, tuples_per_value=2, seed=9
        ).relation
        big = FullEncryptionBaseline(
            bigger_relation, "key", NonDeterministicScheme()
        ).setup()
        assert big.modelled_query_seconds() > small.modelled_query_seconds()


class TestOpaqueSimulator:
    def test_calibration_point(self):
        sim = OpaqueSimulator()
        assert sim.full_encryption_seconds() == pytest.approx(89.0)

    def test_table6_shape(self):
        """QB+Opaque grows roughly linearly with sensitivity and stays far
        below the 89 s full-encryption scan at low sensitivity."""
        row = OpaqueSimulator().table6_row()
        times = [row[a] for a in (0.01, 0.05, 0.2, 0.4, 0.6)]
        assert times == sorted(times)
        assert times[0] < 15  # ~11 s in the paper
        assert times[-1] < 89
        assert row[0.01] < row[0.6] < OpaqueSimulator().full_encryption_seconds() + 20

    def test_speedup_decreases_with_sensitivity(self):
        sim = OpaqueSimulator()
        assert sim.speedup_over_full_encryption(0.01) > sim.speedup_over_full_encryption(0.6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OpaqueSimulator(dataset_tuples=0)
        with pytest.raises(ConfigurationError):
            OpaqueSimulator().qb_selection_seconds(1.5)


class TestJanaSimulator:
    def test_calibration_point(self):
        assert JanaSimulator().full_encryption_seconds() == pytest.approx(1051.0)

    def test_table6_shape(self):
        row = JanaSimulator().table6_row()
        times = [row[a] for a in (0.01, 0.05, 0.2, 0.4, 0.6)]
        assert times == sorted(times)
        assert times[0] < 60  # ~22 s in the paper
        assert 500 < times[-1] < 1051  # ~749 s in the paper

    def test_jana_slower_than_opaque_at_every_sensitivity(self):
        opaque = OpaqueSimulator().table6_row()
        jana = JanaSimulator().table6_row()
        for alpha in opaque:
            assert jana[alpha] > opaque[alpha]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JanaSimulator(full_scan_seconds=0)


class TestDeterministicStoreBaseline:
    def test_queries_work_but_frequency_leaks(self, small_relation):
        baseline = DeterministicStoreBaseline(small_relation, "key").setup()
        value = small_relation.distinct_values("key")[0]
        rows = baseline.query(value)
        assert {r.rid for r in rows} == {
            r.rid for r in small_relation if r["key"] == value
        }
        outcome = baseline.run_frequency_attack()
        assert outcome.succeeded

    def test_requires_setup(self, small_relation):
        baseline = DeterministicStoreBaseline(small_relation, "key")
        with pytest.raises(ConfigurationError):
            baseline.query("x")

    def test_workload_execution_counts_queries(self, small_relation):
        baseline = DeterministicStoreBaseline(small_relation, "key").setup()
        values = small_relation.distinct_values("key")[:5]
        assert baseline.execute_workload(values) == 5
