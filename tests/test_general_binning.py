"""Unit tests for the general case (§IV-B): weighted values and fake tuples."""

import random

import pytest

from repro.core.general_binning import create_general_bins
from repro.exceptions import BinningError


def rng():
    return random.Random(7)


class TestGeneralBinning:
    def test_paper_figure5_example(self):
        """9 values with 10..90 tuples into 3 bins: the greedy packing stays
        close to the perfectly balanced assignment of Figure 5b (150 tuples
        per bin) and far from the naive split of Figure 5a (which needs 270
        fake tuples)."""
        counts = {f"s{i}": 10 * i for i in range(1, 10)}
        non_sensitive = {f"n{i}": 1 for i in range(9)}
        result = create_general_bins(
            counts, non_sensitive, num_sensitive_bins=3, num_non_sensitive_bins=3, rng=rng()
        )
        # The greedy (longest-processing-time) heuristic the paper describes
        # may miss the perfect 150/150/150 split, but every bin must stay
        # within one smallest-item (10 tuples) of the heaviest bin.
        assert result.target_tuples_per_bin <= 160
        assert result.total_fake_tuples <= 30
        assert sum(result.tuples_per_bin.values()) == 450

    def test_fake_tuples_equalise_bins(self):
        counts = {"a": 1000, "b": 1, "c": 1, "d": 1, "e": 1, "f": 1}
        non_sensitive = {f"n{i}": 1 for i in range(9)}
        result = create_general_bins(counts, non_sensitive, rng=rng())
        padded = {
            index: result.tuples_per_bin[index] + result.fake_tuples[index]
            for index in result.tuples_per_bin
        }
        assert len(set(padded.values())) == 1
        assert result.target_tuples_per_bin == max(result.tuples_per_bin.values())

    def test_heavy_hitters_spread_across_bins(self):
        counts = {f"v{i}": count for i, count in enumerate([90, 80, 70, 1, 1, 1])}
        non_sensitive = {f"n{i}": 1 for i in range(9)}
        result = create_general_bins(counts, non_sensitive, rng=rng())
        heavy = {"v0", "v1", "v2"}
        bins_with_heavy = [
            bin_.index
            for bin_ in result.layout.sensitive_bins
            if heavy & set(bin_.values)
        ]
        assert len(bins_with_heavy) == len(set(bins_with_heavy)) == 3

    def test_layout_is_structurally_valid(self):
        counts = {f"s{i}": (i % 5) + 1 for i in range(20)}
        non_sensitive = {f"s{i}": 2 for i in range(10)}
        non_sensitive.update({f"n{i}": 3 for i in range(15)})
        result = create_general_bins(counts, non_sensitive, rng=rng())
        result.layout.validate()
        assert sorted(result.layout.sensitive_values) == sorted(counts)
        assert sorted(result.layout.non_sensitive_values) == sorted(non_sensitive)

    def test_fake_tuple_count_never_negative(self):
        counts = {f"s{i}": i + 1 for i in range(12)}
        non_sensitive = {f"n{i}": 1 for i in range(12)}
        result = create_general_bins(counts, non_sensitive, rng=rng())
        assert all(count >= 0 for count in result.fake_tuples.values())

    def test_uniform_counts_need_no_fakes_when_divisible(self):
        counts = {f"s{i}": 5 for i in range(16)}
        non_sensitive = {f"n{i}": 1 for i in range(16)}
        result = create_general_bins(counts, non_sensitive, rng=rng())
        assert result.total_fake_tuples == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(BinningError):
            create_general_bins({"a": -1}, {"b": 1}, rng=rng())

    def test_empty_inputs_rejected(self):
        with pytest.raises(BinningError):
            create_general_bins({}, {}, rng=rng())

    def test_no_sensitive_values_is_fine(self):
        result = create_general_bins({}, {f"n{i}": 2 for i in range(9)}, rng=rng())
        assert result.total_fake_tuples == 0
        assert len(result.layout.non_sensitive_values) == 9

    def test_greedy_beats_naive_split_for_skewed_counts(self):
        """The balanced packing needs strictly fewer fakes than packing the
        heaviest values together (the Figure 5a strawman)."""
        weights = [10, 20, 30, 40, 50, 60, 70, 80, 90]
        counts = {f"s{i+1}": weight for i, weight in enumerate(weights)}
        non_sensitive = {f"n{i}": 1 for i in range(9)}
        result = create_general_bins(
            counts, non_sensitive, num_sensitive_bins=3, num_non_sensitive_bins=3, rng=rng()
        )
        # Naive split of Figure 5a: {10,20,30}=60, {40,50,60}=150, {70,80,90}=240
        naive_fakes = (240 - 60) + (240 - 150)
        assert result.total_fake_tuples < naive_fakes
