"""Batch-vs-scalar parity for the vectorized crypto hot path (PR 8).

Every vector-capable scheme carries two implementations of its hot loops:
the batched one (``use_batch=True``, the default) and the scalar reference
loop it replaced.  The contract is *observational identity*: identical
tags/tokens bit-for-bit for the deterministic constructions, identical match
sets and decryptions for all of them, and identical work counters — so the
vectorization is invisible to results, the adversary, and the parity
harnesses.  These tests pin that contract, plus the primitives underneath
(``prf_many`` / ``encrypt_many`` / ``decrypt_many``) and the framed
process-member wire format with its version handshake.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cloud import process_member
from repro.cloud.indexes import EncryptedTagIndex
from repro.cloud.process_member import (
    FrameChannel,
    ProcessMemberProxy,
    WIRE_MAGIC,
    WIRE_PICKLE_PROTOCOL,
    WIRE_VERSION,
    _check_hello,
    _HELLO,
    process_backend_available,
)
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.primitives import (
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    decrypt_many,
    encrypt_many,
    prf,
    prf_many,
)
from repro.crypto.searchable import SSEScheme
from repro.data.relation import Relation, Row
from repro.data.schema import Attribute, Schema
from repro.exceptions import IntegrityError, ProcessMemberError
from repro.workloads.generator import generate_partitioned_dataset

VECTOR_SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}


def sample_rows(num: int = 12):
    schema = Schema([Attribute("key"), Attribute("payload")])
    relation = Relation("r", schema)
    keys = ["a", "b", "a", "c"]
    for index in range(num):
        relation.insert(
            {"key": keys[index % len(keys)], "payload": f"p-{index}"},
            sensitive=True,
        )
    return list(relation.rows)


def scheme_pair(scheme_cls):
    """Two instances of one scheme sharing a key: batched and scalar."""
    key = SecretKey.from_passphrase("vector-parity")
    batched = scheme_cls(key)
    scalar = scheme_cls(key)
    scalar.use_batch = False
    return batched, scalar


# -- primitives ---------------------------------------------------------------
class TestPrimitiveParity:
    def test_prf_many_matches_prf(self):
        key = b"k" * 32
        messages = [f"m{i}".encode() for i in range(50)] + [b""]
        assert prf_many(key, messages) == [prf(key, m) for m in messages]

    def test_encrypt_many_round_trips_and_matches_scalar_format(self):
        key = SecretKey.from_passphrase("batch")
        plaintexts = [f"payload-{i}".encode() for i in range(40)] + [b""]
        blobs = encrypt_many(key, plaintexts)
        assert len(blobs) == len(plaintexts)
        # same header byte and layout as the scalar path, so either side
        # can decrypt the other's output
        scalar_blob = aead_encrypt(key, plaintexts[0])
        assert blobs[0][:1] == scalar_blob[:1]
        assert [aead_decrypt(key, blob) for blob in blobs] == plaintexts
        assert decrypt_many(key, blobs) == plaintexts

    def test_encrypt_many_uses_fresh_nonces(self):
        key = SecretKey.from_passphrase("batch")
        blobs = encrypt_many(key, [b"same"] * 20)
        assert len({bytes(blob) for blob in blobs}) == 20

    def test_decrypt_many_raises_the_scalar_error_at_the_failing_element(self):
        key = SecretKey.from_passphrase("batch")
        blobs = encrypt_many(key, [b"one", b"two", b"three"])
        tampered = blobs[1][:-1] + bytes([blobs[1][-1] ^ 1])
        with pytest.raises(IntegrityError):
            decrypt_many(key, [blobs[0], tampered, blobs[2]])
        with pytest.raises(IntegrityError):
            aead_decrypt(key, tampered)

    def test_derive_memoization_returns_equal_keys_and_survives_pickle(self):
        key = SecretKey.from_passphrase("memo")
        assert key.derive("row").material == key.derive("row").material
        assert key.derive("row") is key.derive("row")
        clone = pickle.loads(pickle.dumps(key))
        assert clone.material == key.material
        assert clone.derive("row").material == key.derive("row").material


# -- scheme-level parity ------------------------------------------------------
@pytest.mark.parametrize(
    "scheme_cls", VECTOR_SCHEMES.values(), ids=VECTOR_SCHEMES.keys()
)
class TestSchemeBatchParity:
    def test_batch_tags_and_decryptions_match_scalar(self, scheme_cls):
        batched, scalar = scheme_pair(scheme_cls)
        rows = sample_rows()
        stored_batched = batched.encrypt_rows(rows, "key")
        stored_scalar = scalar.encrypt_rows(rows, "key")
        # deterministic tag constructions: tags are bit-identical (SSE tags
        # embed a fresh random nonce, so only their *matching* can be compared)
        if scheme_cls is not SSEScheme:
            assert [r.search_tag for r in stored_batched] == [
                r.search_tag for r in stored_scalar
            ]
        assert [r.rid for r in stored_batched] == [r.rid for r in stored_scalar]
        # ciphertexts differ (fresh nonces) but decrypt to the same rows,
        # and either instance can decrypt the other's output
        for decryptor, stored in (
            (batched, stored_scalar),
            (scalar, stored_batched),
        ):
            decrypted = decryptor.decrypt_rows(stored)
            assert [r.as_dict() for r in decrypted] == [r.as_dict() for r in rows]

    def test_batch_tokens_match_scalar_bit_for_bit(self, scheme_cls):
        batched, scalar = scheme_pair(scheme_cls)
        rows = sample_rows()
        batched.encrypt_rows(rows, "key")
        scalar.encrypt_rows(rows, "key")
        values = ["a", "c", "zzz"]
        tokens_batched = batched.tokens_for_values(values, "key")
        tokens_scalar = scalar.tokens_for_values(values, "key")
        assert [(t.payload, t.hint) for t in tokens_batched] == [
            (t.payload, t.hint) for t in tokens_scalar
        ]

    def test_batch_search_returns_the_scalar_match_list(self, scheme_cls):
        batched, scalar = scheme_pair(scheme_cls)
        rows = sample_rows()
        stored = batched.encrypt_rows(rows, "key")
        scalar.encrypt_rows(rows, "key")  # advance stateful metadata equally
        tokens = batched.tokens_for_values(["a", "b"], "key")
        matches_batched = batched.search(stored, tokens)
        matches_scalar = scalar.search(stored, tokens)
        assert [m.rid for m in matches_batched] == [m.rid for m in matches_scalar]
        expected = {r.rid for r in rows if r["key"] in {"a", "b"}}
        assert {m.rid for m in matches_batched} == expected

    def test_counters_expose_which_path_ran(self, scheme_cls):
        batched, scalar = scheme_pair(scheme_cls)
        rows = sample_rows()
        stored = batched.encrypt_rows(rows, "key")
        scalar.encrypt_rows(rows, "key")
        batched.decrypt_rows(stored)
        batched.tokens_for_values(["a"], "key")
        scalar.tokens_for_values(["a"], "key")
        assert batched.batch_calls > 0
        assert batched.scalar_fallback_calls == 0
        assert scalar.batch_calls == 0
        assert scalar.scalar_fallback_calls > 0


class TestSSESearchEdgeCases:
    def test_batch_search_preserves_storage_order_and_multiplicity(self):
        batched, scalar = scheme_pair(SSEScheme)
        rows = sample_rows()
        stored = batched.encrypt_rows(rows, "key")
        scalar.encrypt_rows(rows, "key")
        tokens = batched.tokens_for_values(["b", "a"], "key")
        assert [m.rid for m in batched.search(stored, tokens)] == [
            m.rid for m in scalar.search(stored, tokens)
        ]

    def test_batch_search_rejects_malformed_tags_like_scalar(self):
        from repro.crypto.base import EncryptedRow
        from repro.exceptions import CryptoError

        batched, scalar = scheme_pair(SSEScheme)
        rows = sample_rows(4)
        stored = batched.encrypt_rows(rows, "key")
        scalar.encrypt_rows(rows, "key")
        bad = [EncryptedRow(rid=99, ciphertext=b"x", search_tag=b"short")] + list(
            stored
        )
        tokens = batched.tokens_for_values(["a"], "key")
        with pytest.raises(CryptoError):
            batched.search(bad, tokens)
        with pytest.raises(CryptoError):
            scalar.search(bad, tokens)


class TestTagIndexBatchProbe:
    def test_probe_many_matches_per_key_probes_and_counters(self):
        scheme = DeterministicScheme(SecretKey.from_passphrase("idx"))
        rows = sample_rows()
        stored = scheme.encrypt_rows(rows, "key")

        loop_index = EncryptedTagIndex(scheme)
        loop_index.add_rows(stored, start_position=0)
        batch_index = EncryptedTagIndex(scheme)
        batch_index.add_rows(stored, start_position=0)

        keys = [stored[0].search_tag, b"missing", stored[1].search_tag]
        loop_buckets = [loop_index.probe(key) for key in keys]
        batch_buckets = batch_index.probe_many(keys)
        assert batch_buckets == loop_buckets
        assert batch_index.probe_count == loop_index.probe_count
        assert batch_index.rows_examined == loop_index.rows_examined


# -- engine-level parity ------------------------------------------------------
@pytest.mark.parametrize(
    "scheme_cls", VECTOR_SCHEMES.values(), ids=VECTOR_SCHEMES.keys()
)
def test_vectorized_engine_is_observably_identical_to_scalar(
    parity_harness, scheme_cls
):
    """Two engines over the same dataset/key/layout — one batched, one forced
    scalar — answer a workload with identical rows, views, and statistics."""

    def scalar_factory(key):
        scheme = scheme_cls(key)
        scheme.use_batch = False
        return scheme

    batched = parity_harness(scheme_cls)
    scalar = parity_harness(scalar_factory)
    workload = batched.workload()
    run_batched = batched.run("batched", workload)
    run_scalar = scalar.run("batched", workload)
    assert run_batched.result_rids == run_scalar.result_rids
    assert run_batched.cloud.stats == run_scalar.cloud.stats
    assert len(run_batched.cloud.view_log) == len(run_scalar.cloud.view_log)
    for ours, theirs in zip(run_batched.cloud.view_log, run_scalar.cloud.view_log):
        assert ours.returned_sensitive_rids == theirs.returned_sensitive_rids
        assert ours.sensitive_request_size == theirs.sensitive_request_size
        assert ours.non_sensitive_request == theirs.non_sensitive_request


@pytest.mark.skipif(
    not process_backend_available(), reason="no fork start method"
)
def test_vectorized_process_execution_matches_sequential(parity_harness):
    """The full pipeline — batched crypto + framed wire format — pins the
    sharded/process placement bit-identical to sequential execution."""
    harness = parity_harness(SSEScheme, member_backend="process")
    workload = harness.workload()
    runs = harness.run_all(workload)
    harness.assert_identical_results(runs)
    harness.assert_identical_traces(runs)
    harness.assert_single_server_parity(runs["sequential"], runs["batched"])


# -- engine/owner batched inserts ---------------------------------------------
@pytest.mark.parametrize("scheme_cls", [DeterministicScheme, ArxIndexScheme])
def test_insert_many_is_equivalent_to_per_row_inserts(
    parity_harness, scheme_cls
):
    def make_dataset():
        return generate_partitioned_dataset(
            num_values=20,
            sensitivity_fraction=0.5,
            association_fraction=0.5,
            tuples_per_value=2,
            seed=13,
        )

    # two independent (but deterministic, hence identical) dataset copies:
    # engines over the same partition would insert into shared relations
    dataset = make_dataset()
    loop_engine = parity_harness(scheme_cls, dataset=make_dataset()).make_engine()
    batch_engine = parity_harness(scheme_cls, dataset=make_dataset()).make_engine()

    # insert existing values only (new values need re-binning, out of scope)
    existing = list(dataset.all_values)[:6]
    stream = [
        ({"key": value, "payload": f"new-{index}"}, index % 2 == 0)
        for index, value in enumerate(existing)
    ]
    for values, sensitive in stream:
        loop_engine.insert(dict(values), sensitive=sensitive)
    batch_engine.insert_many([(dict(values), s) for values, s in stream])

    assert loop_engine.metadata is not None and batch_engine.metadata is not None
    assert (
        loop_engine.metadata.sensitive_counts
        == batch_engine.metadata.sensitive_counts
    )
    assert (
        loop_engine.metadata.non_sensitive_counts
        == batch_engine.metadata.non_sensitive_counts
    )
    for value in existing:
        loop_rows = sorted(
            tuple(sorted(row.values.items())) for row in loop_engine.query(value)
        )
        batch_rows = sorted(
            tuple(sorted(row.values.items())) for row in batch_engine.query(value)
        )
        assert loop_rows == batch_rows


# -- wire format --------------------------------------------------------------
class TestFrameChannel:
    def make_pair(self):
        ctx = process_member._spawn_context()
        left, right = ctx.Pipe()
        return FrameChannel(left), FrameChannel(right)

    def test_round_trip_and_byte_accounting(self):
        sender, receiver = self.make_pair()
        message = ("method", ({"rows": list(range(100))},), {"flag": True})
        sender.send_message(message)
        assert receiver.recv_message() == message
        assert sender.bytes_sent > 0
        assert receiver.bytes_received == sender.bytes_sent
        sender.close()
        receiver.close()

    def test_large_frames_are_chunked(self, monkeypatch):
        monkeypatch.setattr(process_member, "WIRE_CHUNK_BYTES", 64)
        sender, receiver = self.make_pair()
        payload = {"blob": bytes(range(256)) * 40}
        sender.send_message(payload)
        assert receiver.recv_message() == payload
        sender.close()
        receiver.close()

    def test_out_of_band_buffers_round_trip(self):
        sender, receiver = self.make_pair()
        raw = bytes(range(256)) * 10
        sender.send_message({"oob": pickle.PickleBuffer(raw)})
        received = receiver.recv_message()
        assert bytes(received["oob"]) == raw
        sender.close()
        receiver.close()

    def test_scratch_buffer_is_reused_across_messages(self):
        sender, receiver = self.make_pair()
        for index in range(5):
            sender.send_message({"i": index, "pad": b"x" * 1000})
        for index in range(5):
            assert receiver.recv_message()["i"] == index
        sender.close()
        receiver.close()


class TestWireHandshake:
    def test_well_formed_hello_passes(self):
        _check_hello(
            _HELLO.pack(WIRE_MAGIC, WIRE_VERSION, WIRE_PICKLE_PROTOCOL), "m"
        )

    @pytest.mark.parametrize(
        "blob,fragment",
        [
            (b"junk", "malformed"),
            (
                _HELLO.pack(b"NOPE", WIRE_VERSION, WIRE_PICKLE_PROTOCOL),
                "magic mismatch",
            ),
            (
                _HELLO.pack(WIRE_MAGIC, WIRE_VERSION + 1, WIRE_PICKLE_PROTOCOL),
                "version mismatch",
            ),
            (
                _HELLO.pack(WIRE_MAGIC, WIRE_VERSION, WIRE_PICKLE_PROTOCOL + 1),
                "protocol mismatch",
            ),
        ],
        ids=["malformed", "magic", "version", "protocol"],
    )
    def test_mismatches_fail_loudly(self, blob, fragment):
        with pytest.raises(ProcessMemberError, match=fragment):
            _check_hello(blob, "member-0")


def _mixed_version_worker(connection, server_factory, server_kwargs):
    """A worker speaking a future wire version (handshake e2e shim)."""
    connection.send_bytes(
        _HELLO.pack(WIRE_MAGIC, WIRE_VERSION + 1, WIRE_PICKLE_PROTOCOL)
    )
    try:
        connection.recv_bytes()
    except (EOFError, OSError):
        pass
    connection.close()


@pytest.mark.skipif(
    not process_backend_available(), reason="no fork start method"
)
class TestProcessMemberWire:
    def test_mixed_version_pair_fails_at_startup(self, monkeypatch):
        monkeypatch.setattr(
            process_member, "_worker_main", _mixed_version_worker
        )
        with pytest.raises(ProcessMemberError, match="version mismatch"):
            ProcessMemberProxy(name="mixed")

    def test_rpcs_accumulate_wire_bytes_and_reset_rebaselines(self):
        proxy = ProcessMemberProxy(name="wire")
        try:
            assert proxy.network.wire_bytes == 0
            proxy.ping()
            after_ping = proxy.network.wire_bytes
            assert after_ping > 0
            proxy.ping()
            assert proxy.network.wire_bytes > after_ping
            proxy.reset_observations()
            assert proxy.network.wire_bytes == 0
            proxy.ping()
            assert 0 < proxy.network.wire_bytes <= after_ping * 2
        finally:
            proxy.close()
