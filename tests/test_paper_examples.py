"""Integration tests that replay the paper's worked examples and tables.

* Example 1 / Figure 2 — partitioning the Employee relation.
* Example 2 / Table II — the inference attack on naive partitioned execution.
* Table III — the adversarial view under QB for the same three queries.
* Example 3 / Figure 3 / Table IV — the 10+10-value binning and retrieval.
* Example 4 / Table V / Figure 4b — dropping surviving matches when
  Algorithm 2 is not followed.
* §IV informal proof sketch — the 4-value association-probability argument.
"""

import itertools
import random

import pytest

from repro.adversary.attacks import kpa_association_attack
from repro.adversary.auditor import PartitionedSecurityAuditor
from repro.adversary.surviving_matches import SurvivingMatchAnalysis
from repro.adversary.view import AdversarialView, ViewLog
from repro.cloud.server import CloudServer
from repro.core.binning import create_bins
from repro.core.bins import Bin, BinLayout
from repro.core.engine import NaivePartitionedEngine, QueryBinningEngine
from repro.core.retrieval import BinRetriever
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.workloads.employee import employee_partition, paper_example_queries


class TestExample1Partitioning:
    def test_employee2_contains_defense_rows(self):
        partition = employee_partition()
        assert all(row["Dept"] == "Defense" for row in partition.sensitive)
        assert all(row["Dept"] == "Design" for row in partition.non_sensitive)

    def test_partitioned_query_equals_original_query(self):
        """q(R) = qmerge(q(Rs), q(Rns)) for the FirstName=John query of Ex. 1."""
        partition = employee_partition()
        sensitive_hits = partition.sensitive.select_equals("FirstName", "John")
        non_sensitive_hits = partition.non_sensitive.select_equals("FirstName", "John")
        assert {r.rid for r in sensitive_hits} == {3}   # t4
        assert {r.rid for r in non_sensitive_hits} == {1}  # t2


class TestExample2NaiveLeakage:
    """Table II: the adversarial view of naive partitioned execution."""

    @pytest.fixture
    def naive_views(self):
        engine = NaivePartitionedEngine(
            partition=employee_partition(),
            attribute="EId",
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
        ).setup()
        for value in paper_example_queries():
            engine.query(value)
        return engine.cloud.view_log

    def test_table2_row_shapes(self, naive_views):
        views = list(naive_views)
        # Q1 (E259): one encrypted tuple and one cleartext tuple returned.
        assert views[0].sensitive_output_size == 1
        assert views[0].non_sensitive_output_size == 1
        # Q2 (E101): only an encrypted tuple (null on the non-sensitive side).
        assert views[1].sensitive_output_size == 1
        assert views[1].non_sensitive_output_size == 0
        # Q3 (E199): only a cleartext tuple (null on the sensitive side).
        assert views[2].sensitive_output_size == 0
        assert views[2].non_sensitive_output_size == 1

    def test_adversary_learns_associations(self, naive_views):
        """The three observations let the adversary conclude that E259 works in
        both departments, E101 only in Defense, E199 only in Design."""
        outcome = kpa_association_attack(naive_views, num_non_sensitive_values=4)
        assert outcome.succeeded
        assert outcome.details["best_posterior"] == 1.0
        assert "E199" in outcome.details["values_exposed_as_non_sensitive_only"]

    def test_naive_execution_fails_the_audit(self, naive_views):
        report = PartitionedSecurityAuditor(num_non_sensitive_values=4).audit(naive_views)
        assert not report.eq1_association_preserved


class TestTable3QueryBinning:
    """Table III: the same three queries under QB leak nothing."""

    @pytest.fixture
    def qb_run(self):
        engine = QueryBinningEngine(
            partition=employee_partition(),
            attribute="EId",
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
            rng=random.Random(23),
        ).setup()
        for value in paper_example_queries():
            engine.query(value)
        return engine

    def test_results_are_still_correct(self, qb_run):
        assert len(qb_run.query("E259")) == 2
        assert len(qb_run.query("E101")) == 1
        assert len(qb_run.query("E199")) == 1

    def test_every_request_names_a_whole_bin(self, qb_run):
        for view in qb_run.cloud.view_log:
            assert len(view.non_sensitive_request) >= 2
            assert view.sensitive_request_size >= 2

    def test_adversary_cannot_pin_associations(self, qb_run):
        outcome = kpa_association_attack(qb_run.cloud.view_log, num_non_sensitive_values=4)
        assert not outcome.succeeded

    def test_bins_have_paper_dimensions(self, qb_run):
        """4 sensitive + 4 non-sensitive EId values -> 2 bins of 2 on each side
        (the {E101,E259}/{E152,E159} and {E259,E254}/{E199,E152} shape)."""
        layout = qb_run.layout
        assert layout.num_sensitive_bins == 2
        assert layout.num_non_sensitive_bins == 2
        assert layout.max_sensitive_bin_size == 2
        assert layout.max_non_sensitive_bin_size == 2


def figure3_layout():
    sensitive = [
        Bin(0, ["s5", "s10"]),
        Bin(1, ["s1", "s6"]),
        Bin(2, ["s2", "s7"]),
        Bin(3, ["s3", "s8"]),
        Bin(4, ["s4", "s9"]),
    ]
    non_sensitive = [
        Bin(0, ["s5", "s1", "s2", "s3", "ns11"]),
        Bin(1, ["ns12", "s6", "ns13", "ns14", "ns15"]),
    ]
    return BinLayout(sensitive, non_sensitive, attribute="A")


class TestExample3And4SurvivingMatches:
    def test_table4_views_preserve_all_matches(self):
        """Following Algorithm 2 for every value keeps the bin bipartite graph
        complete (Figure 4a)."""
        analysis = SurvivingMatchAnalysis.from_layout(figure3_layout())
        assert analysis.is_complete()
        assert analysis.total_possible_pairs == 10

    def test_table5_random_retrieval_drops_matches(self):
        """The Table V strawman: answering the non-associated values with a
        fixed (rather than rule-determined) bin drops surviving matches."""
        log = ViewLog()
        legit = BinRetriever(figure3_layout())
        query_id = itertools.count()
        # Associated values still follow Algorithm 2 ...
        for value in ("s1", "s2", "s3", "s5", "s6"):
            decision = legit.retrieve(value)
            log.append(
                AdversarialView(
                    query_id=next(query_id),
                    attribute="A",
                    non_sensitive_request=decision.non_sensitive_values,
                    sensitive_request_size=len(decision.sensitive_values),
                    returned_non_sensitive=(),
                    returned_sensitive_rids=tuple(range(len(decision.sensitive_values))),
                    sensitive_bin_index=decision.sensitive_bin_index,
                    non_sensitive_bin_index=decision.non_sensitive_bin_index,
                )
            )
        # ... but the non-associated ones are all answered from (SB1, NSB1)
        # and (SB2, NSB0) only, as in Table V.
        for sensitive_bin, non_sensitive_bin in [(1, 1), (2, 0), (1, 1), (1, 1)]:
            log.append(
                AdversarialView(
                    query_id=next(query_id),
                    attribute="A",
                    non_sensitive_request=("x",),
                    sensitive_request_size=2,
                    returned_non_sensitive=(),
                    returned_sensitive_rids=(sensitive_bin,),
                    sensitive_bin_index=sensitive_bin,
                    non_sensitive_bin_index=non_sensitive_bin,
                )
            )
        analysis = SurvivingMatchAnalysis.from_view_log(
            log, num_sensitive_bins=5, num_non_sensitive_bins=2
        )
        assert not analysis.is_complete()
        assert len(analysis.dropped_pairs()) > 0


class TestInformalProofSketch:
    def test_four_value_association_probability_preserved(self):
        """§IV's informal argument: retrieving {E1, E3} encrypted and {v1, v2}
        cleartext leaves 4 of 16 assignments mapping E1 to v1 — probability
        1/4, identical to the prior."""
        encrypted = ["E1", "E2", "E3", "E4"]
        cleartext = ["v1", "v2", "v3", "v4"]
        prior = 1 / 4

        retrieved_encrypted = {"E1", "E3"}
        retrieved_cleartext = {"v1", "v2"}
        consistent = []
        for assignment in itertools.permutations(cleartext):
            mapping = dict(zip(encrypted, assignment))
            # The adversary knows only that the *query value* is one of the
            # retrieved cleartext values and that its encrypted twin (if any)
            # is among the retrieved encrypted values; every permutation
            # remains consistent with that observation.
            consistent.append(mapping)
        matching = [m for m in consistent if m["E1"] == "v1"]
        assert len(consistent) == 24
        assert len(matching) / len(consistent) == pytest.approx(prior)
        # And the restriction to the retrieved sets alone (4x4 sub-assignments)
        # also leaves exactly 1/4 of them mapping E1 to v1, as the paper counts.
        sub_assignments = list(itertools.product(retrieved_cleartext, repeat=len(retrieved_encrypted)))
        e1_is_v1 = [s for s in sub_assignments if s[0] == "v1"]
        assert len(e1_is_v1) / len(sub_assignments) == pytest.approx(0.5)


class TestFullDomainEquivalence:
    def test_qb_answers_match_plain_execution_for_every_value(self):
        """End-to-end correctness on the Employee example: for every EId value
        the QB answer equals the answer over the original relation."""
        from repro.workloads.employee import build_employee_relation

        relation = build_employee_relation()
        partition = employee_partition()
        engine = QueryBinningEngine(
            partition=partition,
            attribute="EId",
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
            rng=random.Random(41),
        ).setup()
        for value in relation.distinct_values("EId"):
            expected = {row.rid for row in relation.select_equals("EId", value)}
            got = {row.rid for row in engine.query(value)}
            assert got == expected
