"""Unit tests for owner metadata and the binning planner."""

import pytest

from repro.core.metadata import OwnerMetadata
from repro.core.planner import estimate_query_cost, plan_binning
from repro.exceptions import BinningError


def base_metadata():
    return OwnerMetadata.from_counts(
        "EId",
        sensitive_counts={"a": 1, "b": 1, "c": 1},
        non_sensitive_counts={"a": 1, "d": 1, "e": 1, "f": 1},
    )


def skewed_metadata():
    return OwnerMetadata.from_counts(
        "key",
        sensitive_counts={f"s{i}": 10 * (i + 1) for i in range(9)},
        non_sensitive_counts={f"n{i}": 3 for i in range(16)},
    )


class TestOwnerMetadata:
    def test_value_counts_and_alpha(self):
        metadata = base_metadata()
        assert metadata.num_sensitive_values == 3
        assert metadata.num_non_sensitive_values == 4
        assert metadata.sensitive_tuples == 3
        assert metadata.alpha == pytest.approx(3 / 7)

    def test_associated_values(self):
        assert base_metadata().associated_values == ("a",)

    def test_is_base_case_detection(self):
        assert base_metadata().is_base_case
        assert not skewed_metadata().is_base_case

    def test_value_exists_and_expected_result_size(self):
        metadata = base_metadata()
        assert metadata.value_exists("a") and not metadata.value_exists("zzz")
        assert metadata.expected_result_size("a") == 2
        assert metadata.expected_result_size("d") == 1
        assert metadata.expected_result_size("zzz") == 0

    def test_estimated_size_grows_with_values(self):
        small = base_metadata().estimated_size_bytes()
        assert skewed_metadata().estimated_size_bytes() > small

    def test_alpha_of_empty_metadata_is_zero(self):
        empty = OwnerMetadata(attribute="A")
        assert empty.alpha == 0.0


class TestPlanner:
    def test_base_strategy_selected_for_unit_counts(self):
        plan = plan_binning(base_metadata())
        assert plan.strategy == "base"

    def test_general_strategy_selected_for_multi_tuple_counts(self):
        plan = plan_binning(skewed_metadata())
        assert plan.strategy == "general"

    def test_force_strategy_and_layout(self):
        plan = plan_binning(base_metadata(), force_strategy="general", force_layout=(2, 3))
        assert plan.strategy == "general"
        assert plan.num_sensitive_bins == 2
        assert plan.num_non_sensitive_bins == 3

    def test_unknown_strategy_rejected(self):
        with pytest.raises(BinningError):
            plan_binning(base_metadata(), force_strategy="magic")

    def test_empty_metadata_rejected(self):
        with pytest.raises(BinningError):
            plan_binning(OwnerMetadata(attribute="A"))

    def test_planner_picks_cheapest_candidate(self):
        # 82 non-sensitive values: the 41x2 layout is far worse than ~9x10.
        metadata = OwnerMetadata.from_counts(
            "k",
            sensitive_counts={f"s{i}": 1 for i in range(41)},
            non_sensitive_counts={f"n{i}": 1 for i in range(82)},
        )
        plan = plan_binning(metadata)
        assert plan.expected_values_per_query < 1 + 41

    def test_expected_values_per_query(self):
        plan = plan_binning(base_metadata())
        assert plan.expected_values_per_query == (
            plan.expected_sensitive_width + plan.expected_non_sensitive_width
        )

    def test_estimate_query_cost_uniformity(self):
        widths = estimate_query_cost(base_metadata(), 2, 2)
        assert widths[0] == 2  # ceil(3/2)
        assert widths[1] == 2  # ceil(4/2)
        assert widths[2] == pytest.approx(2 * 1.0 + 2 * 1.0)
