"""Fault-injection parity: killing a fleet member must be unobservable.

The repo's availability claim extends the parity claim of
``tests/test_multicloud_parity.py``: with ``replication_factor ≥ 2``, any
single fleet member may crash at any point of a sharded batch — before its
batch starts, mid-batch (partial work lost with the crash), or while the
owner is already decrypting other members' responses — and the degraded run
still returns the same rows, records the same per-query adversarial
information (each half exactly once, on a live member), and aggregates to
the same statistics as the healthy run.  These tests drive the reusable
:class:`tests.conftest.FaultInjectionHarness` across all four bundled
encrypted-search schemes, plus the retry/exclusion machinery and the
``FleetDegradedError`` path when no live replica remains.
"""

import pytest

from repro.cloud.server import CloudServer
from repro.exceptions import CloudError
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.exceptions import FleetDegradedError, MemberFailure

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}

pytestmark = [pytest.mark.multicloud, pytest.mark.faults]


class TestSingleMemberFailureParity:
    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES), ids=sorted(SCHEMES))
    def test_failure_at_every_point_is_unobservable(self, fault_harness, scheme_name):
        """Scheme × failure point: kill the busiest member (a) before its
        batch, (b) mid-batch, (c) after all but one of its requests — by
        which time the other members have completed and the owner's
        decryption overlap has already consumed their responses."""
        harness = fault_harness(SCHEMES[scheme_name])
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        assert load >= 2, "workload too small to place a mid-batch failure"
        for at_offset in (0, load // 2, load - 1):
            degraded = harness.run_with_failure(workload, victim, at_offset=at_offset)
            fleet = degraded.fleet
            assert fleet[victim].dead
            assert fleet[victim].failures_injected >= 1
            assert victim in fleet.failed_members
            report = fleet.last_report
            assert report.failed_members == frozenset({victim})
            # every half the victim was serving moved to a live candidate
            assert report.rerouted_halves == load
            for sensitive_placement, cleartext_placement in report.placements:
                for placement in (sensitive_placement, cleartext_placement):
                    if placement is not None:
                        assert placement[0] != victim
            # the crash lost the victim's in-flight work: nothing recorded
            assert len(fleet[victim].view_log) == 0
            harness.assert_degraded_parity(healthy, degraded)

    def test_any_member_is_survivable(self, fault_harness):
        """The acceptance criterion's 'any single fleet member': every member
        of the fleet is killed mid-batch in turn, and every degraded run is
        bit-identical to the healthy one."""
        harness = fault_harness(DeterministicScheme)
        workload = harness.workload(repeats=1)
        healthy = harness.run("sharded", workload)
        loads = harness.member_loads(healthy, workload)
        assert all(load > 0 for load in loads), "every member should be serving"
        for victim, load in enumerate(loads):
            degraded = harness.run_with_failure(
                workload, victim, at_offset=load // 2
            )
            harness.assert_degraded_parity(healthy, degraded)

    def test_two_members_failing_in_the_same_wave_converge(self, fault_harness):
        """Two simultaneous crashes: halves re-routed from the first victim
        may initially target the second (not yet excluded when the first
        failure is handled); the wave-boundary revalidation must move them
        on before any excluded member is handed work.  5 members with k=3
        and non-adjacent victims keep every candidate chain alive."""
        harness = fault_harness(
            DeterministicScheme, num_shards=5, replication_factor=3
        )
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        for victim in (0, 2):
            fleet[victim].schedule_failure(at_offset=1)
        outcome = engine.execute_workload_with_rows(
            list(workload), placement="sharded"
        )
        assert fleet.last_report.failed_members == frozenset({0, 2})
        for sensitive_placement, cleartext_placement in fleet.last_report.placements:
            for placement in (sensitive_placement, cleartext_placement):
                if placement is not None:
                    assert placement[0] not in (0, 2)
        degraded = type(healthy)(
            placement="sharded",
            engine=engine,
            result_rids=[sorted(r.rid for r in rows) for rows, _ in outcome],
            traces=[trace for _rows, trace in outcome],
        )
        harness.assert_degraded_parity(healthy, degraded)

    def test_deterministic_cloud_error_propagates_without_failover(
        self, fault_harness
    ):
        """A non-crash CloudError (malformed request, misconfiguration) is
        not an outage: it must reach the caller unchanged, and the raising
        member must not be marked failed."""

        class MisconfiguredServer(CloudServer):
            reject = False

            def process_batch(self, requests):
                if self.reject:
                    raise CloudError("deterministic request error")
                return super().process_batch(requests)

        harness = fault_harness(DeterministicScheme)
        harness.server_factory = MisconfiguredServer
        workload = harness.workload()
        engine = harness.make_engine(sharded=True)
        engine.multi_cloud[0].reject = True
        with pytest.raises(CloudError, match="deterministic request error"):
            engine.execute_workload_with_rows(list(workload), placement="sharded")
        assert engine.multi_cloud.failed_members == set()

    def test_failure_during_decrypt_overlap_really_overlapped(self, fault_harness):
        """Pin the 'during decrypt overlap' scenario structurally: by the
        time the victim's crash is handled, responses from other members
        have already been consumed (the failover wave runs strictly after
        wave-one completions were handed to the response consumer)."""
        harness = fault_harness(DeterministicScheme)
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        engine = harness.make_engine(sharded=True)
        engine.multi_cloud[victim].schedule_failure(at_offset=load - 1)
        consumed_before_failover = []

        def consumer(request, response):
            consumed_before_failover.append(
                len(engine.multi_cloud.failed_members) == 0
            )

        requests, _slots = engine.build_requests(list(workload))
        engine.multi_cloud.process_batch(
            requests, engine.shard_router, response_consumer=consumer
        )
        # some halves were consumed while the victim was still considered
        # live (wave one), some only after its exclusion (failover wave)
        assert any(consumed_before_failover)
        assert not all(consumed_before_failover)


class TestRetryAndExclusion:
    def test_transient_failure_recovers_on_retry_without_failover(self, fault_harness):
        """One crash inside the per-member retry budget: the member's batch
        is simply re-served by the member itself — no exclusion, no
        re-routing, and (because the crash restored its observations) no
        double-recorded views."""
        harness = fault_harness(DeterministicScheme)
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        degraded = harness.run_with_failure(
            workload, victim, at_offset=load // 2, failures=1, permanent=False
        )
        fleet = degraded.fleet
        assert not fleet[victim].dead
        assert fleet[victim].failures_injected == 1
        assert victim not in fleet.failed_members
        assert fleet.last_report.failed_members == frozenset()
        assert fleet.last_report.rerouted_halves == 0
        assert len(fleet[victim].view_log) == load
        harness.assert_degraded_parity(healthy, degraded)

    def test_retry_budget_exhaustion_fails_over(self, fault_harness):
        """A member that keeps crashing past its retry budget is excluded and
        its work moves to replicas — still with full parity."""
        harness = fault_harness(DeterministicScheme)
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        degraded = harness.run_with_failure(
            workload, victim, at_offset=load // 2, failures=5, permanent=False
        )
        fleet = degraded.fleet
        # initial attempt + one retry (MultiCloud default budget), then excluded
        assert fleet[victim].failures_injected == 2
        assert victim in fleet.failed_members
        assert fleet.last_report.rerouted_halves == load
        harness.assert_degraded_parity(healthy, degraded)

    def test_failed_member_stays_excluded_in_later_batches(self, fault_harness):
        """The exclusion set persists: after a crash, subsequent workloads
        route straight to replicas without tripping over the dead member."""
        harness = fault_harness(DeterministicScheme)
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        degraded = harness.run_with_failure(workload, victim, at_offset=load // 2)
        fleet = degraded.fleet
        views_after_first = len(fleet[victim].view_log)
        # same engine, second batch: no new failures, same results as healthy
        outcome = degraded.engine.execute_workload_with_rows(
            list(workload), placement="sharded"
        )
        assert fleet.last_report.failed_members == frozenset()
        assert [sorted(r.rid for r in rows) for rows, _ in outcome] == (
            healthy.result_rids
        )
        assert len(fleet[victim].view_log) == views_after_first
        harness.assert_no_member_saw_both_halves(degraded)


class TestFleetDegradation:
    def test_no_live_replica_raises_clear_error(self, fault_harness):
        """Without replication a member crash is unsurvivable for its bins:
        the batch must fail fast with FleetDegradedError, not hang or return
        partial results."""
        harness = fault_harness(DeterministicScheme, replication_factor=1)
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        engine = harness.make_engine(sharded=True)
        # a successful batch first, so the stale-report check below is real
        engine.execute_workload_with_rows(list(workload[:3]), placement="sharded")
        assert engine.multi_cloud.last_report is not None
        engine.multi_cloud[victim].schedule_failure(at_offset=load // 2)
        with pytest.raises(FleetDegradedError) as excinfo:
            engine.execute_workload_with_rows(list(workload), placement="sharded")
        message = str(excinfo.value)
        assert "no live member" in message
        assert "replication_factor" in message
        # the underlying member error is chained and quoted, not swallowed
        assert isinstance(excinfo.value.__cause__, MemberFailure)
        assert "member errors" in message and f"cloud-{victim}" in message
        # an aborted batch must not leave the previous batch's report behind
        assert engine.multi_cloud.last_report is None

    def test_losing_the_whole_replica_chain_raises(self, fault_harness):
        """k = 2 tolerates one failure per bin but not two: killing a member
        and its ring successor exhausts some bin's chain."""
        harness = fault_harness(DeterministicScheme)  # 4 members, k = 2
        workload = harness.workload()
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        loads_engine = harness.run("sharded", workload)
        loads = harness.member_loads(loads_engine, workload)
        victim = max(range(len(loads)), key=loads.__getitem__)
        successor = (victim + 1) % len(fleet)
        fleet[victim].schedule_failure(at_offset=0)
        fleet[successor].schedule_failure(at_offset=0)
        with pytest.raises(FleetDegradedError):
            engine.execute_workload_with_rows(list(workload), placement="sharded")

    def test_coordinator_rolls_back_members_that_do_not_self_restore(
        self, fault_harness
    ):
        """The one-view-per-half guarantee must not depend on the member
        implementation cleaning up after itself: a plain server that records
        part of its batch and then raises (no self-restore) is rolled back
        by the coordinator's pre-wave snapshot, so the re-routed halves are
        still recorded exactly once fleet-wide."""

        class AbruptlyCrashingServer(CloudServer):
            """Serves a prefix, then raises without restoring anything."""

            crash_after: int = None  # armed post-construction

            def process_batch(self, requests):
                if self.crash_after is None:
                    return super().process_batch(requests)
                crash_after, self.crash_after = self.crash_after, None
                super().process_batch(list(requests[:crash_after]))
                raise MemberFailure(f"{self.name} crashed without cleanup")

        harness = fault_harness(DeterministicScheme)
        harness.server_factory = AbruptlyCrashingServer
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        engine = harness.make_engine(sharded=True)
        fleet = engine.multi_cloud
        fleet[victim].crash_after = load // 2
        outcome = engine.execute_workload_with_rows(
            list(workload), placement="sharded"
        )
        # the crashed attempt's partial views were rolled back by the
        # coordinator; the member then served its retried batch in full
        assert fleet.last_report.failed_members == frozenset()
        assert len(fleet[victim].view_log) == load
        degraded = type(healthy)(
            placement="sharded",
            engine=engine,
            result_rids=[sorted(r.rid for r in rows) for rows, _ in outcome],
            traces=[trace for _rows, trace in outcome],
        )
        harness.assert_degraded_parity(healthy, degraded)

    def test_crash_restores_observation_snapshot(self, fault_harness):
        """The crash semantics behind stats parity, asserted directly: a
        mid-batch crash leaves the victim's views, statistics, network log,
        and query-id counter exactly as they were before the batch."""
        harness = fault_harness(DeterministicScheme)
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        degraded = harness.run_with_failure(workload, victim, at_offset=load // 2)
        server = degraded.fleet[victim]
        assert len(server.view_log) == 0
        assert server.stats.queries_served == 0
        assert server.stats.sensitive_tokens_processed == 0
        assert server.network.total_tuples("download") == 0
        # only the outsourcing uploads survive the crash
        assert server.network.total_tuples("upload") > 0
