"""Replica placement: exhaustive non-collusion, determinism, and rebalance.

Replication adds a second way for a bin's token half to reach a member —
replica storage and failover service — so the PR 2 non-collusion property
("the two halves of a request land on different members") must be
strengthened to a *set-level* invariant: for every sensitive bin, the set of
members that may ever hold or serve its token half (primary plus replicas)
is disjoint from the set of members that may ever serve its paired cleartext
traffic (preferred placement plus every failover candidate).  This file
proves that exhaustively over a grid of fleet shapes, replication factors,
and policies, pins replica determinism under rebuild/rebalance (the PR 2
coverage gap around ``rebalanced`` + ``reset_observations``), and checks the
replicated storage layer actually materialises the router's promises.
"""

import random

import pytest

from repro.cloud.multi_cloud import MultiCloud, ShardRouter
from repro.cloud.server import BatchRequest, CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.base import SearchToken
from repro.crypto.primitives import SecretKey
from repro.crypto.searchable import SSEScheme
from repro.data.partition import replica_chain
from repro.exceptions import CloudError, PartitioningError

pytestmark = [pytest.mark.multicloud, pytest.mark.faults]

POLICIES = ["hash", "range"]

#: (num_servers, replication_factor) — every combination with at least one
#: cleartext-capable member left over, including the k = n - 1 extreme where
#: the cleartext segment shrinks to a single member.
FLEET_GRID = [
    (num_servers, replication_factor)
    for num_servers in (2, 3, 4, 6)
    for replication_factor in (1, 2, 3, 5)
    if replication_factor + 1 <= num_servers
]

#: (sensitive bins, non-sensitive bins) layout shapes for the grid sweep.
BIN_SHAPES = [(5, 7), (12, 12), (2, 9)]


def _request(sensitive_bin, non_sensitive_bin):
    return BatchRequest(
        attribute="A",
        cleartext_values=("w",),
        tokens=(SearchToken(payload=b"t"),),
        sensitive_bin_index=sensitive_bin,
        non_sensitive_bin_index=non_sensitive_bin,
    )


class TestReplicaChains:
    @pytest.mark.parametrize("fleet", FLEET_GRID)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_replicas_are_distinct_primary_first(self, fleet, policy):
        num_servers, replication_factor = fleet
        router = ShardRouter(
            8, 8, num_servers, policy=policy, replication_factor=replication_factor
        )
        for bin_index in range(8):
            chain = router.replicas_of_sensitive(bin_index)
            assert len(chain) == replication_factor
            assert len(set(chain)) == replication_factor
            assert chain[0] == router.shard_of_sensitive(bin_index)
            assert all(0 <= member < num_servers for member in chain)

    def test_replica_chain_is_the_ring_successors(self):
        assert replica_chain(2, 5, 3) == (2, 3, 4)
        assert replica_chain(4, 5, 3) == (4, 0, 1)
        assert replica_chain(1, 4, 1) == (1,)

    def test_replica_chain_validation(self):
        with pytest.raises(PartitioningError):
            replica_chain(0, 4, 0)
        with pytest.raises(PartitioningError):
            replica_chain(0, 4, 5)


class TestExhaustiveNonCollusion:
    """The acceptance-criteria sweep: token members ∩ cleartext members = ∅."""

    @pytest.mark.parametrize("shape", BIN_SHAPES)
    @pytest.mark.parametrize("fleet", FLEET_GRID)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_no_member_holds_token_slice_and_paired_cleartext(
        self, shape, fleet, policy
    ):
        """For every bin pair, *every* candidate the router could ever pick
        for the cleartext half — preferred or failover — avoids *every*
        member holding the sensitive bin's slice (primary or replica)."""
        sensitive_bins, non_sensitive_bins = shape
        num_servers, replication_factor = fleet
        router = ShardRouter(
            sensitive_bins,
            non_sensitive_bins,
            num_servers,
            policy=policy,
            replication_factor=replication_factor,
        )
        for sensitive_bin in range(sensitive_bins):
            token_members = set(router.replicas_of_sensitive(sensitive_bin))
            anchor = router.shard_of_sensitive(sensitive_bin)
            for non_sensitive_bin in range(non_sensitive_bins):
                candidates = router.cleartext_candidates(non_sensitive_bin, anchor)
                # the full failover chain covers the whole cleartext segment
                assert len(set(candidates)) == num_servers - replication_factor
                overlap = token_members & set(candidates)
                assert not overlap, (
                    f"pair ({sensitive_bin}, {non_sensitive_bin}) can co-locate "
                    f"on members {sorted(overlap)} under {policy} with "
                    f"{num_servers} servers, k={replication_factor}"
                )

    @pytest.mark.parametrize("fleet", FLEET_GRID)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_route_candidates_agree_with_route_and_stay_disjoint(self, fleet, policy):
        num_servers, replication_factor = fleet
        router = ShardRouter(
            6, 6, num_servers, policy=policy, replication_factor=replication_factor
        )
        for sensitive_bin in range(6):
            for non_sensitive_bin in range(6):
                request = _request(sensitive_bin, non_sensitive_bin)
                sensitive_candidates, cleartext_candidates = router.route_candidates(
                    request
                )
                assert (sensitive_candidates[0], cleartext_candidates[0]) == (
                    router.route(request)
                )
                assert not set(sensitive_candidates) & set(cleartext_candidates)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_unknown_bins_keep_the_invariant(self, policy):
        """Bins born after the router (incremental re-binning) fall back to
        hash placement but must honour the same segment split."""
        router = ShardRouter(4, 4, 5, policy=policy, replication_factor=2)
        for sensitive_bin in range(4, 30):
            token_members = set(router.replicas_of_sensitive(sensitive_bin))
            anchor = router.shard_of_sensitive(sensitive_bin)
            for non_sensitive_bin in range(4, 30):
                candidates = router.cleartext_candidates(non_sensitive_bin, anchor)
                assert not token_members & set(candidates)


class TestReplicationDefaults:
    def test_default_replication_matches_pr2_placement(self):
        """``replication_factor=1`` must reproduce the unreplicated router
        bit-for-bit: same primaries, single-member chains, same preferred
        cleartext member — existing deployments see no movement."""
        plain = ShardRouter(10, 8, 4)
        assert plain.replication_factor == 1
        for sensitive_bin in range(10):
            assert plain.replicas_of_sensitive(sensitive_bin) == (
                plain.shard_of_sensitive(sensitive_bin),
            )
        for non_sensitive_bin in range(8):
            for anchor in range(4):
                preferred = plain.shard_of_non_sensitive(non_sensitive_bin, anchor)
                assert preferred == plain.cleartext_candidates(
                    non_sensitive_bin, anchor
                )[0]
                assert preferred != anchor

    def test_replication_validation(self):
        with pytest.raises(CloudError):
            ShardRouter(4, 4, 3, replication_factor=0)
        with pytest.raises(CloudError):
            ShardRouter(4, 4, 3, replication_factor=3)  # no cleartext member left
        ShardRouter(4, 4, 3, replication_factor=2)  # largest valid k at 3 servers


class TestRebalanceRegression:
    """The PR 2 coverage gap: ``rebalanced`` after member join/leave."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_rebalanced_preserves_replication_and_is_deterministic(self, policy):
        router = ShardRouter(10, 8, 4, policy=policy, replication_factor=2)
        grown = router.rebalanced(6)
        assert grown.replication_factor == 2
        fresh = ShardRouter(10, 8, 6, policy=policy, replication_factor=2)
        assert grown.replica_assignment() == fresh.replica_assignment()
        # shrinking back (member leave) reproduces the original chains
        shrunk = grown.rebalanced(4)
        assert shrunk.replica_assignment() == router.replica_assignment()
        # an explicit override changes k without touching the policy
        stronger = router.rebalanced(4, replication_factor=3)
        assert stronger.replication_factor == 3
        assert stronger.policy == policy

    def test_rebalanced_to_too_small_fleet_is_rejected(self):
        router = ShardRouter(6, 6, 4, replication_factor=3)
        with pytest.raises(CloudError):
            router.rebalanced(3)  # 3 servers cannot host k=3 plus a cleartext member

    def test_rebin_clears_fleet_observations_and_recovers_members(
        self, parity_dataset
    ):
        """Re-binning after a failure re-outsources every member from scratch:
        observation logs restart, the failed-member exclusion is lifted, and
        the rebuilt replica placement equals a freshly computed router's."""
        from repro.crypto.deterministic import DeterministicScheme
        from repro.extensions.inserts import IncrementalInserter

        engine = QueryBinningEngine(
            partition=parity_dataset.partition,
            attribute=parity_dataset.attribute,
            scheme=DeterministicScheme(SecretKey.from_passphrase("rebin-key")),
            cloud=CloudServer(),
            rng=random.Random(17),
            multi_cloud=MultiCloud(4),
            replication_factor=2,
        ).setup()
        fleet = engine.multi_cloud
        engine.execute_workload_with_rows(
            list(parity_dataset.all_values), placement="sharded"
        )
        fleet.failed_members.add(2)  # as if member 2 had crashed
        assert any(len(server.view_log) > 0 for server in fleet.servers)

        IncrementalInserter(engine).rebin()

        assert fleet.failed_members == set()
        for server in fleet.servers:
            assert len(server.view_log) == 0
            assert server.stats.queries_served == 0
        rebuilt = engine.shard_router
        fresh = ShardRouter(
            engine.layout.num_sensitive_bins,
            engine.layout.num_non_sensitive_bins,
            4,
            policy=engine.shard_policy,
            replication_factor=2,
        )
        assert rebuilt.replica_assignment() == fresh.replica_assignment()
        # and the redeployed fleet still answers identically to the reference
        value = parity_dataset.all_values[0]
        [(rows, _trace)] = engine.execute_workload_with_rows(
            [value], placement="sharded"
        )
        assert sorted(r.rid for r in rows) == sorted(
            r.rid for r in engine.query(value)
        )


class TestReplicatedStorage:
    """The storage layer materialises the router's chains exactly."""

    @pytest.fixture(scope="class")
    def replicated_engine(self, parity_dataset):
        engine = QueryBinningEngine(
            partition=parity_dataset.partition,
            attribute=parity_dataset.attribute,
            scheme=SSEScheme(SecretKey.from_passphrase("replica-store-key")),
            cloud=CloudServer(),
            rng=random.Random(17),
            multi_cloud=MultiCloud(4),
            replication_factor=2,
        )
        return engine.setup()

    def test_fleet_stores_exactly_k_copies(self, replicated_engine):
        engine = replicated_engine
        fleet_total = sum(
            server.encrypted_row_count for server in engine.multi_cloud.servers
        )
        assert fleet_total == 2 * engine.cloud.encrypted_row_count

    def test_every_row_lives_exactly_on_its_bin_chain(self, replicated_engine):
        engine = replicated_engine
        router = engine.shard_router
        holders = {}
        for index, server in enumerate(engine.multi_cloud.servers):
            for row in server.stored_encrypted_rows:
                holders.setdefault(row.rid, set()).add(index)
        for row in engine.partition.sensitive.rows:
            location = engine.layout.locate_sensitive(row[engine.attribute])
            assert location is not None
            expected = set(router.replicas_of_sensitive(location[0]))
            assert holders[row.rid] == expected

    def test_replica_members_hold_identical_bin_slices(self, replicated_engine):
        """A failover must be bit-identical, so each member of a bin's chain
        stores the same ciphertext sequence for the bin (fakes included)."""
        engine = replicated_engine
        router = engine.shard_router
        for bin_index in range(engine.layout.num_sensitive_bins):
            slices = []
            for member in router.replicas_of_sensitive(bin_index):
                store = engine.multi_cloud[member]._bin_store
                assert store is not None
                slices.append([row.rid for row in store.get(bin_index, [])])
            assert slices[0], f"bin {bin_index} stored nowhere"
            assert all(current == slices[0] for current in slices[1:])

    def test_owner_passes_replication_through(self):
        """DBOwner(replication_factor=...) reaches the attribute's router and
        the sharded placement still answers correctly."""
        from repro.owner.db_owner import DBOwner
        from repro.workloads.employee import build_employee_relation, employee_policy

        owner = DBOwner(
            build_employee_relation(),
            employee_policy(),
            permutation_seed=7,
            num_clouds=4,
            replication_factor=2,
        )
        engine = owner.outsource("EId")
        assert engine.replication_factor == 2
        assert engine.shard_router.replication_factor == 2
        fleet = owner.multi_cloud_for("EId")
        assert sum(s.encrypted_row_count for s in fleet.servers) == (
            2 * engine.cloud.encrypted_row_count
        )
        [trace] = owner.execute_workload("EId", ["E259"], placement="sharded")
        assert trace.rows_after_merge == len(owner.query("EId", "E259"))

    def test_replicated_insert_reaches_the_whole_chain(self, parity_dataset):
        engine = QueryBinningEngine(
            partition=parity_dataset.partition,
            attribute=parity_dataset.attribute,
            scheme=SSEScheme(SecretKey.from_passphrase("replica-insert-key")),
            cloud=CloudServer(),
            rng=random.Random(17),
            multi_cloud=MultiCloud(4),
            replication_factor=2,
        ).setup()
        value = next(
            v
            for v in parity_dataset.all_values
            if engine.layout.locate_sensitive(v) is not None
        )
        bin_index = engine.layout.locate_sensitive(value)[0]
        chain = engine.shard_router.replicas_of_sensitive(bin_index)
        before = [engine.multi_cloud[m].encrypted_row_count for m in chain]
        template = next(iter(engine.partition.sensitive.rows))
        new_values = dict(template.values)
        new_values[engine.attribute] = value
        engine.insert(new_values, sensitive=True)
        after = [engine.multi_cloud[m].encrypted_row_count for m in chain]
        assert after == [count + 1 for count in before]
        # ...and nowhere else
        fleet_total = sum(
            server.encrypted_row_count for server in engine.multi_cloud.servers
        )
        assert fleet_total == 2 * engine.cloud.encrypted_row_count
