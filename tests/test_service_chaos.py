"""Chaos parity: the service under a hostile wire equals the service
under a clean one.

The headline suite scripts a five-kind fault storm (drop, truncate,
stall, corrupt, duplicate) against every connection of N concurrent
retrying clients and proves, for all four encrypted-search schemes, that

* every query returns exactly what a fault-free reference owner returns,
* every insert lands **exactly once** — replays and duplicate deliveries
  are absorbed by the per-tenant dedup window, never re-applied,
* every scripted fault actually fired (a storm that silently misses
  proves nothing), and
* the service winds down clean: pending drains to zero and no ``svc-*``
  thread outlives ``stop()``.

Faults are *scripted at request offsets*, not drawn from probabilities,
so every run of this suite exercises the identical storm — the service
analogue of the fleet's seeded :class:`FaultInjectionHarness` discipline.
"""

import threading
import time

import pytest

from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.exceptions import ServiceError
from repro.owner.db_owner import DBOwner
from repro.owner.keystore import KeyStore
from repro.service import (
    ChaosEvent,
    ChaosScenario,
    ChaosScript,
    EncryptedSearchService,
    RetryPolicy,
    ServiceClient,
    TenantRegistry,
)
from repro.workloads.employee import build_employee_relation, employee_policy

pytestmark = pytest.mark.service

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}

#: Queried throughout the run; never inserted under, so mid-storm query
#: results are independent of how concurrent inserts interleave.
QUERY_VALUES = ("E259", "E101", "E152", "E199")
#: All inserts go under this (existing) value; it is queried only after
#: the storm, when every insert has settled.
INSERT_VALUE = "E254"


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.002)


def _service_threads():
    return [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith("svc-")
    ]


def _insert_row(client_index: int, insert_index: int) -> dict:
    return {
        "EId": INSERT_VALUE,
        "FirstName": f"C{client_index}",
        "LastName": f"Row{insert_index}",
        "SSN": f"9{client_index}{insert_index}",
        "Office": "9",
        "Dept": "QA",
    }


def _client_ops(client_index: int):
    """12 ops: 9 queries interleaved with 3 inserts (ops 2, 4, 7)."""
    ops = []
    insert_index = 0
    for position, kind in enumerate("qqiqiqqiqqqq"):
        if kind == "q":
            ops.append(("query", QUERY_VALUES[position % len(QUERY_VALUES)]))
        else:
            ops.append(("insert", _insert_row(client_index, insert_index)))
            insert_index += 1
    return ops


def _storm() -> ChaosScenario:
    """The scripted five-kind storm one client endures, connection by
    connection.  With the 12-op trace above and sequential calls, the
    offsets land as annotated — every kind fires exactly once, and the
    ``duplicate`` strikes an insert, so the dedup window must absorb it.
    """
    return ChaosScenario(
        [
            ChaosScript(
                [
                    ChaosEvent("stall", 1, seconds=0.03),  # query, slowly
                    ChaosEvent("duplicate", 2),  # first insert, twice
                    ChaosEvent("truncate", 5),  # mid-frame death
                ]
            ),
            # reconnect resumes at op 5; offset 2 is op 7 — the third
            # insert's frame corrupts in flight, the server reaps, and the
            # retry must replay the insert without double-applying
            ChaosScript([ChaosEvent("corrupt", 2)]),
            # resumes at op 7; offset 3 is op 10 — dropped before sending
            ChaosScript([ChaosEvent("drop", 3)]),
            # resumes at op 10; offset 1 duplicates a query (harmless)
            ChaosScript([ChaosEvent("duplicate", 1)]),
        ]
    )


EXPECTED_STORM = {"stall": 1, "duplicate": 2, "truncate": 1, "corrupt": 1, "drop": 1}


def _reference_rows(owner: DBOwner, value: str):
    return sorted(
        (row.rid, dict(row.values)) for row in owner.query("EId", value)
    )


class TestChaosParity:
    """The headline suite: N retrying clients through the storm, per scheme."""

    NUM_CLIENTS = 3

    @pytest.fixture(params=sorted(SCHEMES), ids=sorted(SCHEMES))
    def scheme_factory(self, request):
        return SCHEMES[request.param]

    def test_storm_is_unobservable_in_results(self, scheme_factory):
        registry = TenantRegistry()
        registry.provision(
            "acme",
            build_employee_relation(),
            employee_policy(),
            attributes=("EId",),
            scheme_factory=scheme_factory,
            permutation_seed=17,
        )
        reference = DBOwner(
            build_employee_relation(),
            employee_policy(),
            keystore=KeyStore(),
            scheme_factory=scheme_factory,
            permutation_seed=17,
        )
        reference.outsource("EId")
        baseline = {value: _reference_rows(reference, value) for value in QUERY_VALUES}
        inserted_before = len(reference.query("EId", INSERT_VALUE))

        service = EncryptedSearchService(registry, num_workers=4).start()
        scenarios = []
        failures = []
        try:
            host, port = service.address

            def run_client(client_index: int, scenario: ChaosScenario):
                try:
                    client = ServiceClient(
                        host,
                        port,
                        retry=RetryPolicy(
                            max_attempts=8, base_delay=0.01, seed=client_index
                        ),
                        chaos=scenario,
                        client_id=f"storm-{client_index}",
                    )
                    try:
                        for op, argument in _client_ops(client_index):
                            if op == "query":
                                rows = client.query("acme", "EId", argument)
                                assert (
                                    sorted((rid, values) for rid, values in rows)
                                    == baseline[argument]
                                ), f"query {argument} diverged mid-storm"
                            else:
                                client.insert("acme", argument)
                    finally:
                        client.close()
                except Exception as exc:  # noqa: BLE001 - collected and re-raised
                    failures.append((client_index, exc))

            threads = []
            for client_index in range(self.NUM_CLIENTS):
                scenario = _storm()
                scenarios.append(scenario)
                thread = threading.Thread(
                    target=run_client, args=(client_index, scenario)
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join(timeout=60.0)
                assert not thread.is_alive(), "chaos client wedged"
            assert failures == []

            # the storm fired, fully, for every client
            for scenario in scenarios:
                assert dict(scenario.injected) == EXPECTED_STORM
                assert scenario.connections_used == 4

            # duplicate deliveries never re-applied: exactly one dedup
            # absorption per client (the duplicated insert), no more
            _wait_until(
                lambda: service.stats()["pending"] == 0,
                message="late duplicate deliveries to drain",
            )
            assert service.stats()["deduplicated"] == self.NUM_CLIENTS
            assert registry.get("acme").stats()["deduplicated"] == self.NUM_CLIENTS
            # the storm's observable damage is all accounted for: per
            # client, one truncated stream and one CRC failure, each
            # reaping its connection; drops close at message boundaries
            # (orderly hangups) and are not reaps
            stats = service.stats()
            assert stats["corrupt_frames"] == 2 * self.NUM_CLIENTS
            assert stats["reaped_connections"] == 2 * self.NUM_CLIENTS

            # post-storm parity, including exactly-once inserts
            with ServiceClient(host, port) as probe:
                for value in QUERY_VALUES:
                    rows = probe.query("acme", "EId", value)
                    assert (
                        sorted((rid, values) for rid, values in rows)
                        == baseline[value]
                    )
                inserted = probe.query("acme", "EId", INSERT_VALUE)
            for client_index in range(self.NUM_CLIENTS):
                for insert_index in range(3):
                    expected = _insert_row(client_index, insert_index)
                    matches = [
                        values
                        for _rid, values in inserted
                        if values.get("SSN") == expected["SSN"]
                    ]
                    assert len(matches) == 1, (
                        f"insert {expected['SSN']} applied "
                        f"{len(matches)} times, expected exactly once"
                    )
                    assert matches[0]["LastName"] == expected["LastName"]
            assert len(inserted) == inserted_before + 3 * self.NUM_CLIENTS
        finally:
            service.stop()
        assert _service_threads() == []


@pytest.mark.chaos
class TestChaosSmoke:
    """Tier-1-fast: one scripted drop, one retry, one insert — applied once."""

    def test_dropped_insert_retries_exactly_once(self):
        registry = TenantRegistry()
        registry.provision(
            "acme",
            build_employee_relation(),
            employee_policy(),
            attributes=("EId",),
            permutation_seed=17,
        )
        scenario = ChaosScenario([ChaosScript([ChaosEvent("drop", 1)])])
        service = EncryptedSearchService(registry, num_workers=2).start()
        try:
            host, port = service.address
            with ServiceClient(host, port) as probe:
                before = len(probe.query("acme", "EId", INSERT_VALUE))
            with ServiceClient(
                host,
                port,
                retry=RetryPolicy(max_attempts=4, base_delay=0.01, seed=7),
                chaos=scenario,
            ) as client:
                client.insert("acme", _insert_row(9, 0))
                client.insert("acme", _insert_row(9, 1))  # dropped, retried
            assert dict(scenario.injected) == {"drop": 1}
            assert scenario.connections_used == 2
            with ServiceClient(host, port) as probe:
                after = probe.query("acme", "EId", INSERT_VALUE)
            assert len(after) == before + 2
            assert (
                sum(1 for _rid, values in after if values.get("SSN") == "991") == 1
            )
        finally:
            service.stop()
        assert _service_threads() == []


class TestChaosMachinery:
    def test_seeded_scenarios_are_reproducible(self):
        def snapshot(scenario):
            return [
                sorted(
                    (event.at_request, event.kind)
                    for event in script._events.values()
                )
                for script in scenario._scripts
            ]

        first = ChaosScenario.seeded(
            seed=42, connections=6, requests_per_connection=20,
            rates={"drop": 0.1, "corrupt": 0.05},
        )
        second = ChaosScenario.seeded(
            seed=42, connections=6, requests_per_connection=20,
            rates={"drop": 0.1, "corrupt": 0.05},
        )
        third = ChaosScenario.seeded(
            seed=43, connections=6, requests_per_connection=20,
            rates={"drop": 0.1, "corrupt": 0.05},
        )
        assert snapshot(first) == snapshot(second)
        assert snapshot(first) != snapshot(third)  # different storm
        assert any(events for events in snapshot(first))  # fired at all

    def test_rates_above_one_are_rejected(self):
        with pytest.raises(ServiceError):
            ChaosScenario.seeded(
                seed=1, connections=1, requests_per_connection=1,
                rates={"drop": 0.7, "corrupt": 0.6},
            )

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ServiceError):
            ChaosEvent("meteor", 0)

    def test_two_events_on_one_offset_are_rejected(self):
        with pytest.raises(ServiceError):
            ChaosScript([ChaosEvent("drop", 3), ChaosEvent("stall", 3)])

    def test_exhausted_scenario_issues_clean_scripts(self):
        scenario = ChaosScenario([ChaosScript([ChaosEvent("drop", 0)])])
        assert len(scenario.next_script()) == 1
        assert len(scenario.next_script()) == 0  # the storm is finite
        assert scenario.connections_used == 2
