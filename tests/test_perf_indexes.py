"""Parity and invariance tests for the encrypted search index subsystem.

The cloud may answer the sensitive half of a query three ways (tag index,
bin-addressed store, linear scan — see :mod:`repro.cloud.server`); these tests
pin the contract that all paths are observationally identical: same rows, same
order, same adversarial views, same statistics.  Batching
(:meth:`CloudServer.process_batch` / ``execute_workload(batched=True)``) gets
the same treatment: it may deduplicate *work* but never merge or alter what
each query contributes to the view log and the counters.
"""

import random

import pytest

from repro.cloud.server import BatchRequest, CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.primitives import SecretKey
from repro.crypto.searchable import SSEScheme
from repro.workloads.generator import generate_partitioned_dataset

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}

#: general-case dataset (skewed multiplicities force fake tuples)
DATASET_KWARGS = dict(
    num_values=24,
    sensitivity_fraction=0.5,
    association_fraction=0.6,
    tuples_per_value=3,
    skew_exponent=1.1,
    seed=9,
)


def build_engine(dataset, scheme_factory, use_encrypted_indexes, seed=17):
    engine = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=scheme_factory(SecretKey.from_passphrase("parity-key")),
        cloud=CloudServer(use_encrypted_indexes=use_encrypted_indexes),
        rng=random.Random(seed),
    )
    return engine.setup()


@pytest.fixture(scope="module")
def dataset():
    return generate_partitioned_dataset(**DATASET_KWARGS)


class TestIndexedLinearParity:
    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    def test_every_query_returns_identical_rows(self, dataset, scheme_name):
        indexed = build_engine(dataset, SCHEMES[scheme_name], True)
        linear = build_engine(dataset, SCHEMES[scheme_name], False)
        for value in dataset.all_values:
            indexed_rows = indexed.query(value)
            linear_rows = linear.query(value)
            assert sorted(r.rid for r in indexed_rows) == sorted(
                r.rid for r in linear_rows
            ), f"row set diverged for {value!r} under {scheme_name}"

    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    def test_adversarial_views_are_identical(self, dataset, scheme_name):
        """The index must not change what the cloud observes — not even order."""
        indexed = build_engine(dataset, SCHEMES[scheme_name], True)
        linear = build_engine(dataset, SCHEMES[scheme_name], False)
        for value in dataset.all_values:
            indexed.query(value)
            linear.query(value)
        assert len(indexed.cloud.view_log) == len(linear.cloud.view_log)
        for via, vib in zip(indexed.cloud.view_log, linear.cloud.view_log):
            assert via.non_sensitive_request == vib.non_sensitive_request
            assert via.sensitive_request_size == vib.sensitive_request_size
            assert via.returned_sensitive_rids == vib.returned_sensitive_rids
            assert via.sensitive_bin_index == vib.sensitive_bin_index

    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    def test_indexed_path_scans_fewer_rows(self, dataset, scheme_name):
        indexed = build_engine(dataset, SCHEMES[scheme_name], True)
        linear = build_engine(dataset, SCHEMES[scheme_name], False)
        for value in dataset.all_values:
            indexed.query(value)
            linear.query(value)
        assert (
            indexed.cloud.stats.sensitive_rows_scanned
            < linear.cloud.stats.sensitive_rows_scanned
        )

    def test_tag_index_built_for_capable_schemes(self, dataset):
        for name, factory in SCHEMES.items():
            engine = build_engine(dataset, factory, True)
            if factory.supports_tag_index:
                assert engine.cloud._tag_index is not None, name
            else:
                assert engine.cloud._tag_index is None, name
                assert engine.cloud._bin_store is not None, name

    def test_bin_store_scan_bounded_by_bin_size(self, dataset):
        """SSE (no stable tags) scans one bin's slice, never the relation."""
        engine = build_engine(dataset, SSEScheme, True)
        total = engine.cloud.encrypted_row_count
        for value in dataset.all_values:
            _, trace = engine.query_with_trace(value)
            del trace
        per_query = [
            view.sensitive_request_size for view in engine.cloud.view_log
        ]
        assert per_query  # sanity: sensitive requests happened
        store = engine.cloud._bin_store
        largest_bin = max(len(rows) for rows in store.values())
        assert largest_bin < total
        # every response examined at most one bin's rows
        last = engine.cloud.process_request(
            engine.attribute,
            [],
            engine.tokens_for_decision(engine.retriever.retrieve(dataset.all_values[0])),
            sensitive_bin_index=engine.retriever.retrieve(
                dataset.all_values[0]
            ).sensitive_bin_index,
        )
        assert last.sensitive_scanned <= largest_bin


class TestBatchingInvariance:
    def _workload(self, dataset, repeats=3, seed=41):
        rng = random.Random(seed)
        workload = list(dataset.all_values) * repeats
        rng.shuffle(workload)
        return workload

    @pytest.mark.parametrize("scheme_name", ["deterministic", "sse"])
    def test_batched_equals_sequential(self, dataset, scheme_name):
        sequential = build_engine(dataset, SCHEMES[scheme_name], True)
        batched = build_engine(dataset, SCHEMES[scheme_name], True)
        workload = self._workload(dataset)

        traces_seq = sequential.execute_workload(workload, batched=False)
        traces_bat = batched.execute_workload(workload)

        assert len(traces_seq) == len(traces_bat)
        for ts, tb in zip(traces_seq, traces_bat):
            assert ts.query == tb.query
            assert ts.sensitive_values_requested == tb.sensitive_values_requested
            assert ts.non_sensitive_values_requested == tb.non_sensitive_values_requested
            assert ts.encrypted_rows_returned == tb.encrypted_rows_returned
            assert ts.non_sensitive_rows_returned == tb.non_sensitive_rows_returned
            assert ts.rows_after_merge == tb.rows_after_merge
            assert ts.transfer_seconds == pytest.approx(tb.transfer_seconds)

        # CloudStatistics must be unchanged by batching, field for field.
        assert sequential.cloud.stats == batched.cloud.stats

        # The tag index's own work counters must not diverge either.
        if sequential.cloud._tag_index is not None:
            assert (
                sequential.cloud._tag_index.probe_count
                == batched.cloud._tag_index.probe_count
            )
            assert (
                sequential.cloud._tag_index.rows_examined
                == batched.cloud._tag_index.rows_examined
            )

        # Each query keeps its own adversarial view: same count, same content.
        assert len(sequential.cloud.view_log) == len(batched.cloud.view_log)
        for vs, vb in zip(sequential.cloud.view_log, batched.cloud.view_log):
            assert vs.query_id == vb.query_id
            assert vs.request_signature() == vb.request_signature()
            assert vs.sensitive_bin_index == vb.sensitive_bin_index
            assert vs.non_sensitive_bin_index == vb.non_sensitive_bin_index

    def test_process_batch_dedupes_shared_retrievals(self, dataset):
        """Duplicate requests in one batch share one computed result list."""
        engine = build_engine(dataset, DeterministicScheme, True)
        decision = engine.retriever.retrieve(dataset.all_values[0])
        request = BatchRequest(
            attribute=engine.attribute,
            cleartext_values=tuple(decision.non_sensitive_values),
            tokens=tuple(engine.tokens_for_decision(decision)),
            sensitive_bin_index=decision.sensitive_bin_index,
            non_sensitive_bin_index=decision.non_sensitive_bin_index,
        )
        responses = engine.cloud.process_batch([request, request, request])
        assert len(responses) == 3
        first = responses[0]
        for other in responses[1:]:
            # identity, not equality: the retrieval ran once
            assert other.encrypted_rows is first.encrypted_rows
            assert other.non_sensitive_rows is first.non_sensitive_rows
        # ...but every request produced its own view.
        assert len(engine.cloud.view_log) == 3


class TestOwnerSideCaching:
    class CountingScheme(DeterministicScheme):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.token_calls = 0

        def tokens_for_values(self, values, attribute):
            self.token_calls += 1
            return super().tokens_for_values(values, attribute)

    def test_tokens_cached_per_bin(self, dataset):
        engine = build_engine(dataset, self.CountingScheme, True)
        value = dataset.all_values[0]
        engine.query(value)
        calls_after_first = engine.scheme.token_calls
        engine.query(value)
        engine.query(value)
        assert engine.scheme.token_calls == calls_after_first

    def test_sensitive_insert_invalidates_token_cache(self, dataset):
        engine = build_engine(dataset, self.CountingScheme, True)
        value = next(
            v
            for v in dataset.all_values
            if engine.layout.locate_sensitive(v) is not None
        )
        engine.query(value)
        calls_after_first = engine.scheme.token_calls
        template = next(iter(engine.partition.sensitive.rows))
        new_values = dict(template.values)
        new_values[engine.attribute] = value
        engine.insert(new_values, sensitive=True)
        rows = engine.query(value)
        assert engine.scheme.token_calls > calls_after_first
        # the fresh tokens surface the inserted row
        assert any(r[engine.attribute] == value for r in rows)

    def test_fake_rows_batch_generated(self, dataset):
        engine = build_engine(dataset, DeterministicScheme, True)
        layout = engine.layout
        assert engine.fake_rows_outsourced == sum(layout.fake_tuples.values())
        assert engine.fake_rows_outsourced > 0  # the skewed dataset pads
        fakes = [row for row in engine.cloud.stored_encrypted_rows if row.is_fake]
        assert len(fakes) == engine.fake_rows_outsourced


class TestCloudHotPathFixes:
    def test_hash_index_lookup_does_not_copy(self, dataset):
        from repro.cloud.indexes import HashIndex

        relation = dataset.partition.non_sensitive
        index = HashIndex(relation, dataset.attribute)
        hit_value = next(iter(relation)).values[dataset.attribute]
        assert index.lookup(hit_value) is index.lookup(hit_value)
        assert index.lookup("definitely-missing") == []

    def test_stored_encrypted_rows_cached_until_mutation(self, dataset):
        engine = build_engine(dataset, DeterministicScheme, True)
        server = engine.cloud
        snapshot = server.stored_encrypted_rows
        assert server.stored_encrypted_rows is snapshot
        template = next(iter(engine.partition.sensitive.rows))
        extra = engine.scheme.encrypt_rows([template], engine.attribute)
        server.append_sensitive(extra)
        refreshed = server.stored_encrypted_rows
        assert refreshed is not snapshot
        assert len(refreshed) == len(snapshot) + 1
