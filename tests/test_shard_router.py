"""Property-style coverage of the shard router's placement guarantees.

Three invariants carry the multi-cloud security and correctness story:

1. *Totality* — every bin maps to exactly one member, so a bin's whole slice
   (real and fake tuples) lives on one server and retrievals never cross
   servers.
2. *Determinism* — placement is a pure function of (bin counts, policy,
   fleet size): rebuilding or rebalancing reproduces the same assignment,
   so setup can be re-run and fleets resized without consulting stored
   state.
3. *Non-collusion* — for every (sensitive bin, non-sensitive bin) pair the
   two request halves land on different members, so no single server can
   associate the pair (the paper's non-colluding-clouds assumption).
"""

import pytest

from repro.cloud.multi_cloud import ShardRouter
from repro.cloud.server import BatchRequest
from repro.crypto.base import SearchToken
from repro.data.partition import (
    hash_shard_assignment,
    range_shard_assignment,
    stable_item_hash,
)
from repro.exceptions import CloudError, PartitioningError

pytestmark = pytest.mark.multicloud

#: (sensitive bins, non-sensitive bins, shards) shapes swept by the
#: property tests: squares, skewed rectangles, fewer bins than shards, and
#: single-bin degenerate layouts.
SHAPES = [
    (4, 4, 2),
    (7, 5, 3),
    (5, 7, 4),
    (2, 9, 6),
    (12, 12, 5),
    (1, 1, 2),
    (3, 3, 8),
]

POLICIES = ["hash", "range"]


def _request(sensitive_bin, non_sensitive_bin):
    return BatchRequest(
        attribute="A",
        cleartext_values=("w",),
        tokens=(SearchToken(payload=b"t"),),
        sensitive_bin_index=sensitive_bin,
        non_sensitive_bin_index=non_sensitive_bin,
    )


class TestAssignmentPolicies:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_hash_assignment_total_and_in_range(self, num_shards):
        assignment = hash_shard_assignment(range(50), num_shards)
        assert sorted(assignment) == list(range(50))
        assert all(0 <= shard < num_shards for shard in assignment.values())

    def test_hash_assignment_independent_of_item_set(self):
        """Adding items never moves existing ones (stable under growth)."""
        small = hash_shard_assignment(range(10), 4)
        large = hash_shard_assignment(range(100), 4)
        assert all(large[item] == shard for item, shard in small.items())

    def test_hash_is_process_stable(self):
        """crc32-backed, not the salted builtin ``hash``."""
        assert stable_item_hash(3) == stable_item_hash(3)
        assert hash_shard_assignment(range(6), 3) == hash_shard_assignment(range(6), 3)

    @pytest.mark.parametrize("count,num_shards", [(10, 3), (9, 3), (2, 5), (0, 2)])
    def test_range_assignment_contiguous_and_balanced(self, count, num_shards):
        assignment = range_shard_assignment(range(count), num_shards)
        assert sorted(assignment) == list(range(count))
        # contiguity: shard ids are non-decreasing over the item order
        shards_in_order = [assignment[item] for item in range(count)]
        assert shards_in_order == sorted(shards_in_order)
        # balance: shard loads differ by at most one
        loads = [shards_in_order.count(shard) for shard in range(num_shards)]
        assert max(loads) - min(loads) <= 1

    def test_zero_shards_rejected(self):
        with pytest.raises(PartitioningError):
            hash_shard_assignment(range(3), 0)
        with pytest.raises(PartitioningError):
            range_shard_assignment(range(3), 0)


class TestShardRouterPlacement:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_bin_maps_to_exactly_one_shard(self, shape, policy):
        sensitive_bins, non_sensitive_bins, shards = shape
        router = ShardRouter(sensitive_bins, non_sensitive_bins, shards, policy=policy)
        assignment = router.sensitive_assignment()
        assert sorted(assignment) == list(range(sensitive_bins))
        for bin_index in range(sensitive_bins):
            shard = router.shard_of_sensitive(bin_index)
            assert 0 <= shard < shards
            # the public accessor and the stored assignment agree
            assert shard == assignment[bin_index]

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_no_shard_receives_both_halves_of_any_bin_pair(self, shape, policy):
        """The non-collusion guarantee, exhaustively over all bin pairs."""
        sensitive_bins, non_sensitive_bins, shards = shape
        router = ShardRouter(sensitive_bins, non_sensitive_bins, shards, policy=policy)
        for sensitive_bin in range(sensitive_bins):
            for non_sensitive_bin in range(non_sensitive_bins):
                sensitive_shard, cleartext_shard = router.route(
                    _request(sensitive_bin, non_sensitive_bin)
                )
                assert sensitive_shard is not None and cleartext_shard is not None
                assert sensitive_shard != cleartext_shard, (
                    f"pair ({sensitive_bin}, {non_sensitive_bin}) co-located "
                    f"on shard {sensitive_shard} under {policy}"
                )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_unknown_bins_still_route_and_never_collude(self, policy):
        """Layout growth (incremental re-binning) must not break routing."""
        router = ShardRouter(4, 4, 3, policy=policy)
        for sensitive_bin in range(4, 40):
            for non_sensitive_bin in range(4, 40):
                sensitive_shard, cleartext_shard = router.route(
                    _request(sensitive_bin, non_sensitive_bin)
                )
                assert 0 <= sensitive_shard < 3
                assert sensitive_shard != cleartext_shard

    def test_half_free_requests_route_partially(self):
        router = ShardRouter(4, 4, 2)
        token_only = BatchRequest(
            attribute="A", tokens=(SearchToken(payload=b"t"),), sensitive_bin_index=1
        )
        sensitive_shard, cleartext_shard = router.route(token_only)
        assert sensitive_shard is not None and cleartext_shard is None
        cleartext_only = BatchRequest(
            attribute="A", cleartext_values=("w",), non_sensitive_bin_index=2
        )
        sensitive_shard, cleartext_shard = router.route(cleartext_only)
        assert sensitive_shard is None and cleartext_shard is not None


class TestRebalancing:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_rebalancing_is_deterministic(self, policy):
        """Same layout + same count ⇒ same assignment, however you got there."""
        router = ShardRouter(10, 8, 3, policy=policy)
        grown = router.rebalanced(5)
        fresh = ShardRouter(10, 8, 5, policy=policy)
        assert grown.sensitive_assignment() == fresh.sensitive_assignment()
        # ...and shrinking back reproduces the original
        shrunk = grown.rebalanced(3)
        assert shrunk.sensitive_assignment() == router.sensitive_assignment()
        assert shrunk.policy == router.policy

    def test_rebalanced_fleet_keeps_non_collusion(self):
        router = ShardRouter(6, 6, 2).rebalanced(4)
        for sensitive_bin in range(6):
            for non_sensitive_bin in range(6):
                sensitive_shard, cleartext_shard = router.route(
                    _request(sensitive_bin, non_sensitive_bin)
                )
                assert sensitive_shard != cleartext_shard

    def test_hash_policy_rebalance_only_moves_bins_between_shard_counts(self):
        """Hash placement of a bin depends only on (bin, count) — the usual
        modular-rehash property — so two routers at the same count always
        agree even if their layouts differ in the *other* side's bin count."""
        first = ShardRouter(8, 3, 4, policy="hash")
        second = ShardRouter(8, 11, 4, policy="hash")
        assert first.sensitive_assignment() == second.sensitive_assignment()


class TestValidation:
    def test_single_shard_rejected(self):
        with pytest.raises(CloudError):
            ShardRouter(4, 4, 1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(CloudError):
            ShardRouter(4, 4, 2, policy="round-robin")

    def test_fleet_rejects_mismatched_router(self):
        """A router sized for a different fleet must not silently misroute:
        bin slices do not migrate, so serving through it would return empty
        results (too few shards) or crash (too many)."""
        from repro.cloud.multi_cloud import MultiCloud

        fleet = MultiCloud(4)
        with pytest.raises(CloudError):
            fleet.split_requests([_request(0, 0)], ShardRouter(6, 6, 2))
        with pytest.raises(CloudError):
            fleet.process_batch([_request(0, 0)], ShardRouter(6, 6, 6))

    def test_counter_mutating_schemes_declare_concurrency_unsafe(self):
        """The fleet serialises members for schemes whose search() mutates
        shared counters; the declaration is what triggers that."""
        from repro.crypto.base import EncryptedSearchScheme
        from repro.crypto.deterministic import DeterministicScheme
        from repro.crypto.homomorphic import PaillierScheme
        from repro.crypto.secret_sharing import SecretSharingScheme

        assert EncryptedSearchScheme.concurrent_search_safe is True
        assert DeterministicScheme.concurrent_search_safe is True
        assert PaillierScheme.concurrent_search_safe is False
        assert SecretSharingScheme.concurrent_search_safe is False
