"""Integration-style tests for the QB and naive partitioned engines."""

import random

import pytest

from repro.cloud.server import CloudServer
from repro.core.engine import NaivePartitionedEngine, QueryBinningEngine
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.exceptions import ConfigurationError
from repro.workloads.generator import generate_partitioned_dataset


def make_engine(dataset, scheme=None, **kwargs):
    engine = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=scheme or NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(17),
        **kwargs,
    )
    return engine.setup()


def plain_answer(dataset, value):
    """Ground truth: rids of all rows matching the value in the original data."""
    return {
        row.rid for row in dataset.relation if row[dataset.attribute] == value
    }


class TestQueryBinningCorrectness:
    def test_every_value_returns_exactly_the_matching_rows(self, small_dataset):
        engine = make_engine(small_dataset)
        for value in small_dataset.all_values:
            rows = engine.query(value)
            assert {row.rid for row in rows} == plain_answer(small_dataset, value)

    def test_unknown_value_returns_empty_without_touching_cloud(self, small_dataset):
        engine = make_engine(small_dataset)
        before = len(engine.cloud.view_log)
        assert engine.query("not-a-value") == []
        assert len(engine.cloud.view_log) == before

    def test_correctness_with_skewed_counts(self, skewed_dataset):
        engine = make_engine(skewed_dataset)
        for value in skewed_dataset.all_values:
            rows = engine.query(value)
            assert {row.rid for row in rows} == plain_answer(skewed_dataset, value)

    @pytest.mark.parametrize("scheme_cls", [DeterministicScheme, SSEScheme, ArxIndexScheme])
    def test_correctness_over_other_schemes(self, small_dataset, scheme_cls):
        engine = make_engine(small_dataset, scheme=scheme_cls())
        for value in list(small_dataset.all_values)[:10]:
            rows = engine.query(value)
            assert {row.rid for row in rows} == plain_answer(small_dataset, value)

    def test_requires_setup(self, small_dataset):
        engine = QueryBinningEngine(
            partition=small_dataset.partition,
            attribute=small_dataset.attribute,
            scheme=NonDeterministicScheme(),
        )
        with pytest.raises(ConfigurationError):
            engine.query("v000000")


class TestQueryBinningBehaviour:
    def test_requests_cover_whole_bins(self, small_dataset):
        engine = make_engine(small_dataset)
        value = small_dataset.all_values[0]
        _rows, trace = engine.query_with_trace(value)
        assert trace.binned is not None
        layout = engine.layout
        assert trace.sensitive_values_requested in {0, *{b.size for b in layout.sensitive_bins}}
        assert trace.non_sensitive_values_requested in {
            0,
            *{b.size for b in layout.non_sensitive_bins},
        }

    def test_rewrite_exposes_bins_without_executing(self, small_dataset):
        engine = make_engine(small_dataset)
        before = len(engine.cloud.view_log)
        binned = engine.rewrite(small_dataset.all_values[0])
        assert binned.total_requested_values > 0
        assert len(engine.cloud.view_log) == before

    def test_fake_tuples_outsourced_for_skewed_data(self, skewed_dataset):
        engine = make_engine(skewed_dataset)
        assert engine.plan.strategy == "general"
        expected_fakes = sum(engine.layout.fake_tuples.values())
        assert engine.fake_rows_outsourced == expected_fakes
        real_rows = len(skewed_dataset.partition.sensitive)
        assert engine.cloud.encrypted_row_count == real_rows + expected_fakes

    def test_fake_tuples_never_reach_query_answers(self, skewed_dataset):
        engine = make_engine(skewed_dataset)
        for value in skewed_dataset.all_values[:8]:
            for row in engine.query(value):
                assert row.rid >= 0

    def test_fake_tuples_can_be_disabled(self, skewed_dataset):
        engine = make_engine(skewed_dataset, add_fake_tuples=False)
        assert engine.fake_rows_outsourced == 0

    def test_equal_sensitive_output_sizes_with_fakes(self, skewed_dataset):
        """With padding, every sensitive bin returns the same number of
        encrypted tuples — the property that defeats the size attack."""
        engine = make_engine(skewed_dataset)
        sizes = set()
        for value in skewed_dataset.all_values:
            _rows, trace = engine.query_with_trace(value)
            if trace.binned is not None and trace.sensitive_values_requested:
                sizes.add(trace.encrypted_rows_returned)
        assert len(sizes) == 1

    def test_execute_workload_returns_traces(self, small_dataset):
        engine = make_engine(small_dataset)
        traces = engine.execute_workload(small_dataset.all_values[:5])
        assert len(traces) == 5
        assert all(trace.rows_after_merge >= 0 for trace in traces)

    def test_insert_existing_value_visible_in_queries(self, small_dataset):
        engine = make_engine(small_dataset)
        value = small_dataset.all_values[0]
        before = len(engine.query(value))
        engine.insert({"key": value, "payload": "fresh"}, sensitive=True)
        assert len(engine.query(value)) == before + 1

    def test_force_layout_is_respected(self, small_dataset):
        engine = make_engine(small_dataset, force_layout=(3, 10))
        assert engine.layout.num_sensitive_bins == 3
        assert engine.layout.num_non_sensitive_bins == 10


class TestNaiveEngine:
    def test_naive_returns_correct_answers(self, employee_split):
        engine = NaivePartitionedEngine(
            partition=employee_split,
            attribute="EId",
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
        ).setup()
        assert len(engine.query("E259")) == 2
        assert len(engine.query("E101")) == 1
        assert len(engine.query("E199")) == 1
        assert engine.query("E000") == []

    def test_naive_sends_exact_values(self, employee_split):
        engine = NaivePartitionedEngine(
            partition=employee_split,
            attribute="EId",
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
        ).setup()
        engine.query("E259")
        view = engine.cloud.view_log.views[0]
        assert view.non_sensitive_request == ("E259",)

    def test_naive_requires_setup(self, employee_split):
        engine = NaivePartitionedEngine(
            partition=employee_split, attribute="EId", scheme=NonDeterministicScheme()
        )
        with pytest.raises(ConfigurationError):
            engine.query("E259")
