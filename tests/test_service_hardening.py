"""Wire hardening: handshake failures, reaping, frame caps, rate limits,
deadlines, dedup, and exact accounting under client death.

Every test runs against a real TCP service on an ephemeral loopback port,
with deadlines tightened to keep the suite seconds-fast.  The raw-socket
helpers below speak the service's message format (u32 length | u32 crc32 |
payload) directly, so the hostile-peer tests exercise the server with
byte sequences no well-behaved client would produce.
"""

import pickle
import socket
import struct
import threading
import time
import zlib

import pytest

from repro.cloud.process_member import (
    WIRE_MAGIC,
    WIRE_PICKLE_PROTOCOL,
    WIRE_VERSION,
)
from repro.exceptions import (
    DeadlineExceededError,
    FrameTooLargeError,
    ServiceError,
    TenantRateLimitedError,
)
from repro.service import (
    DedupWindow,
    EncryptedSearchService,
    RetryPolicy,
    ServiceClient,
    SocketConnection,
    TenantRegistry,
    TokenBucket,
)
from repro.service.protocol import _MESSAGE_HEADER, STATUS_ERROR, STATUS_OK
from repro.workloads.employee import build_employee_relation, employee_policy

pytestmark = pytest.mark.service

_HELLO = struct.Struct("<4sHH")
_FRAME_HEADER = struct.Struct("<QI")


def make_registry(tenants=("acme",), **session_kwargs):
    registry = TenantRegistry()
    for name in tenants:
        registry.provision(
            name,
            build_employee_relation(),
            employee_policy(),
            attributes=("EId",),
            permutation_seed=17,
            **session_kwargs,
        )
    return registry


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.002)


def _gate_worker(registry, tenant="acme"):
    """Park the tenant's execute on an Event (see tests/test_service.py)."""
    session = registry.get(tenant)
    original = session.execute
    entered = threading.Event()
    release = threading.Event()

    def gated_execute(op, payload):
        entered.set()
        release.wait(timeout=30.0)
        return original(op, payload)

    session.execute = gated_execute
    return entered, release


def _service_threads():
    return [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith("svc-")
    ]


# -- raw-socket protocol helpers ---------------------------------------------------


def send_raw_message(sock, payload: bytes) -> None:
    sock.sendall(_MESSAGE_HEADER.pack(len(payload), zlib.crc32(payload)) + payload)


def _recv_exact(sock, count: int) -> bytes:
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            raise EOFError("peer closed")
        data += chunk
    return data


def recv_raw_message(sock) -> bytes:
    length, crc = _MESSAGE_HEADER.unpack(_recv_exact(sock, _MESSAGE_HEADER.size))
    payload = _recv_exact(sock, length)
    assert zlib.crc32(payload) == crc
    return payload


def recv_frame_object(sock):
    """One whole FrameChannel frame (header message + payload chunks)."""
    header = recv_raw_message(sock)
    payload_length, buffer_count = _FRAME_HEADER.unpack_from(header, 0)
    assert buffer_count == 0
    payload = b""
    while len(payload) < payload_length:
        payload += recv_raw_message(sock)
    return pickle.loads(payload)


def raw_handshake(sock) -> None:
    send_raw_message(
        sock, _HELLO.pack(WIRE_MAGIC, WIRE_VERSION, WIRE_PICKLE_PROTOCOL)
    )
    hello = recv_raw_message(sock)
    magic, version, _protocol = _HELLO.unpack(hello)
    assert magic == WIRE_MAGIC and version == WIRE_VERSION


# -- handshake failure modes -------------------------------------------------------


class TestHandshakeFailureModes:
    """A peer that never completes the hello costs one counter and one
    closed socket — never a parked reader thread or a stalled accept loop."""

    @pytest.fixture
    def service(self):
        svc = EncryptedSearchService(
            make_registry(), num_workers=1, handshake_timeout=0.3
        ).start()
        yield svc
        svc.stop()

    def _assert_failure_handled(self, service, sock):
        # the server closes the connection...
        sock.settimeout(5.0)
        deadline = time.monotonic() + 5.0
        while True:
            try:
                if sock.recv(4096) == b"":
                    break
            except OSError:
                break
            if time.monotonic() > deadline:
                raise AssertionError("server kept the bad connection open")
        # ...counts the failure, frees the reader thread, and still serves
        _wait_until(
            lambda: service.stats()["handshake_failures"] >= 1,
            message="handshake failure accounting",
        )
        _wait_until(
            lambda: "svc-reader" not in _service_threads(),
            message="reader thread to exit",
        )
        host, port = service.address
        with ServiceClient(host, port) as client:
            assert client.ping("acme") == "pong"

    def test_version_mismatch_hello(self, service):
        with socket.create_connection(service.address) as sock:
            send_raw_message(
                sock,
                _HELLO.pack(WIRE_MAGIC, WIRE_VERSION + 1, WIRE_PICKLE_PROTOCOL),
            )
            self._assert_failure_handled(service, sock)

    def test_garbage_before_hello(self, service):
        with socket.create_connection(service.address) as sock:
            # not even a framed message: the length prefix decodes to
            # ~542 MB, which the frame cap refuses before allocating
            sock.sendall(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n")
            self._assert_failure_handled(service, sock)

    def test_client_that_connects_but_never_sends(self, service):
        with socket.create_connection(service.address) as sock:
            # send nothing at all: the handshake deadline must reap us
            self._assert_failure_handled(service, sock)

    def test_wrong_magic_hello(self, service):
        with socket.create_connection(service.address) as sock:
            send_raw_message(
                sock, _HELLO.pack(b"XXXX", WIRE_VERSION, WIRE_PICKLE_PROTOCOL)
            )
            self._assert_failure_handled(service, sock)


# -- post-handshake reaping --------------------------------------------------------


class TestConnectionReaping:
    def test_slow_loris_mid_frame_is_reaped(self):
        """A frame that starts but never finishes trips message_timeout."""
        service = EncryptedSearchService(
            make_registry(), num_workers=1,
            read_deadline=30.0, message_timeout=0.3,
        ).start()
        try:
            with socket.create_connection(service.address) as sock:
                raw_handshake(sock)
                # announce 100 bytes, deliver 10, hold the line open
                sock.sendall(_MESSAGE_HEADER.pack(100, 0) + b"x" * 10)
                _wait_until(
                    lambda: service.stats()["reaped_connections"] >= 1,
                    message="slow-loris reap",
                )
                _wait_until(
                    lambda: service.stats()["open_connections"] == 0,
                    message="connection table cleanup",
                )
        finally:
            service.stop()

    def test_idle_connection_is_reaped_after_read_deadline(self):
        service = EncryptedSearchService(
            make_registry(), num_workers=1, read_deadline=0.3
        ).start()
        try:
            with socket.create_connection(service.address) as sock:
                raw_handshake(sock)
                _wait_until(
                    lambda: service.stats()["reaped_connections"] >= 1,
                    message="idle reap",
                )
                _wait_until(
                    lambda: "svc-reader" not in _service_threads(),
                    message="reader thread exit",
                )
        finally:
            service.stop()

    def test_corrupt_frame_fails_loudly_and_reaps(self):
        service = EncryptedSearchService(make_registry(), num_workers=1).start()
        try:
            with socket.create_connection(service.address) as sock:
                raw_handshake(sock)
                payload = b"not the bytes the checksum promises"
                sock.sendall(
                    _MESSAGE_HEADER.pack(len(payload), zlib.crc32(b"original"))
                    + payload
                )
                _wait_until(
                    lambda: service.stats()["corrupt_frames"] == 1,
                    message="corruption accounting",
                )
                assert service.stats()["reaped_connections"] >= 1
        finally:
            service.stop()


# -- frame size caps ---------------------------------------------------------------


class TestFrameSizeCaps:
    def test_client_side_cap_rejects_before_sending(self):
        service = EncryptedSearchService(make_registry(), num_workers=1).start()
        try:
            host, port = service.address
            with ServiceClient(host, port, max_frame_bytes=64 * 1024) as client:
                with pytest.raises(FrameTooLargeError):
                    client.insert(
                        "acme",
                        {"EId": "E259", "blob": "x" * (256 * 1024)},
                    )
                # nothing hit the wire: the connection is still good
                assert client.ping("acme") == "pong"
        finally:
            service.stop()

    def test_server_side_cap_refuses_oversized_announcement(self):
        """A forged frame header announcing 10 GB must cost the peer its
        connection (typed courtesy response on id -1), not the server an
        allocation."""
        service = EncryptedSearchService(make_registry(), num_workers=1).start()
        try:
            with socket.create_connection(service.address) as sock:
                raw_handshake(sock)
                send_raw_message(sock, _FRAME_HEADER.pack(10 ** 10, 0))
                response = recv_frame_object(sock)
                assert response.request_id == -1
                assert response.status == STATUS_ERROR
                assert response.error_type == "FrameTooLargeError"
                _wait_until(
                    lambda: service.stats()["oversized_frames"] == 1,
                    message="oversize accounting",
                )
                with pytest.raises(EOFError):
                    recv_raw_message(sock)  # connection was dropped
        finally:
            service.stop()


# -- per-tenant rate limiting ------------------------------------------------------


class TestRateLimiting:
    def test_token_bucket_refill_math(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=lambda: now[0])
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        now[0] += 0.1  # one token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        now[0] += 10.0  # refill caps at burst
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]

    def test_noisy_tenant_is_shed_with_typed_rejection(self):
        now = [0.0]
        registry = TenantRegistry()
        registry.provision(
            "noisy",
            build_employee_relation(),
            employee_policy(),
            attributes=("EId",),
            permutation_seed=17,
            rate_limit=TokenBucket(rate=100.0, burst=3.0, clock=lambda: now[0]),
        )
        registry.provision(
            "calm",
            build_employee_relation(),
            employee_policy(),
            attributes=("EId",),
            permutation_seed=17,
        )
        service = EncryptedSearchService(registry, num_workers=2).start()
        try:
            host, port = service.address
            with ServiceClient(host, port) as client:
                outcomes = []
                for _ in range(5):  # frozen clock: no refill mid-burst
                    try:
                        outcomes.append(client.ping("noisy"))
                    except TenantRateLimitedError:
                        outcomes.append("shed")
                assert outcomes == ["pong", "pong", "pong", "shed", "shed"]
                # the compliant tenant is untouched by its neighbour's limit
                assert client.ping("calm") == "pong"
                now[0] += 1.0  # refill so the stats op itself is admitted
                noisy = client.stats("noisy")
                assert noisy["rate_limited"] == 2
                assert noisy["served"] == 3  # the pongs; sheds never ran
                assert client.stats("calm")["rate_limited"] == 0
            stats = service.stats()
            assert stats["rate_limited"] == 2
            assert stats["rejected"] == 0  # global queue never saturated
        finally:
            service.stop()

    def test_retrying_client_rides_out_the_limit(self):
        registry = make_registry(
            rate_limit=TokenBucket(rate=50.0, burst=1.0)
        )
        service = EncryptedSearchService(registry, num_workers=1).start()
        try:
            host, port = service.address
            with ServiceClient(
                host, port, retry=RetryPolicy(max_attempts=8, base_delay=0.01, seed=3)
            ) as client:
                assert [client.ping("acme") for _ in range(4)] == ["pong"] * 4
            assert service.registry.get("acme").stats()["rate_limited"] >= 1
        finally:
            service.stop()


# -- request deadlines -------------------------------------------------------------


class TestRequestDeadlines:
    def test_expired_request_is_dropped_unexecuted(self):
        registry = make_registry()
        service = EncryptedSearchService(registry, num_workers=1).start()
        try:
            entered, release = _gate_worker(registry)
            host, port = service.address
            with ServiceClient(host, port) as client:
                blocker = client.submit("acme", "ping")
                assert entered.wait(timeout=10.0)
                doomed = client.submit("acme", "ping", deadline=0.05)
                _wait_until(
                    lambda: service.stats()["admitted"] == 2,
                    message="doomed request admission",
                )
                time.sleep(0.15)  # let the deadline lapse while queued
                release.set()
                assert blocker.result(timeout=10) == "pong"
                with pytest.raises(DeadlineExceededError):
                    doomed.result(timeout=10)
                # dropped unexecuted: served counts only the gated ping
                session = registry.get("acme")
                assert session.stats()["expired"] == 1
            assert service.stats()["expired"] == 1
        finally:
            service.stop()

    def test_live_deadline_is_honoured(self):
        service = EncryptedSearchService(make_registry(), num_workers=1).start()
        try:
            host, port = service.address
            with ServiceClient(host, port) as client:
                assert client.ping("acme", deadline=30.0) == "pong"
            assert service.stats()["expired"] == 0
        finally:
            service.stop()


# -- dedup window ------------------------------------------------------------------


class TestDedupWindow:
    def test_primary_then_replay(self):
        window = DedupWindow(capacity=4)
        is_primary, outcome = window.claim(("c1", 7))
        assert is_primary and outcome is None
        window.complete(("c1", 7), (STATUS_OK, "result", None, None))
        is_primary, outcome = window.claim(("c1", 7))
        assert not is_primary
        assert outcome == (STATUS_OK, "result", None, None)

    def test_concurrent_duplicate_waits_for_primary(self):
        window = DedupWindow()
        key = ("c1", 1)
        assert window.claim(key) == (True, None)
        seen = []

        def replica():
            seen.append(window.claim(key, timeout=5.0))

        thread = threading.Thread(target=replica, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not seen  # replica is parked until the primary completes
        window.complete(key, (STATUS_OK, 42, None, None))
        thread.join(timeout=5.0)
        assert seen == [(False, (STATUS_OK, 42, None, None))]

    def test_window_evicts_oldest_completed_only(self):
        window = DedupWindow(capacity=2)
        window.claim(("c", 0))  # stays pending: never evictable
        for index in range(1, 5):
            window.claim(("c", index))
            window.complete(("c", index), (STATUS_OK, index, None, None))
        assert len(window) <= 3  # pending + capacity completed
        # the pending key survived every eviction round
        is_primary, _outcome = window.claim(("c", 4))
        assert not is_primary
        window.complete(("c", 0), (STATUS_OK, 0, None, None))

    def test_abandon_releases_claim(self):
        window = DedupWindow()
        assert window.claim(("c", 1)) == (True, None)
        window.abandon(("c", 1))
        assert window.claim(("c", 1)) == (True, None)  # claimable again

    def test_replayed_insert_applies_exactly_once(self):
        """Two deliveries of one (client_id, request_id) — here via two
        clients sharing an identity, each allocating request id 0 — must
        execute once: the second sees the recorded outcome, not a re-run."""
        registry = make_registry()
        service = EncryptedSearchService(registry, num_workers=2).start()
        try:
            host, port = service.address
            with ServiceClient(host, port) as probe:
                before = len(probe.query("acme", "EId", "E259"))
            row = {
                "EId": "E259", "FirstName": "Rep", "LastName": "Layed",
                "SSN": "998", "Office": "9", "Dept": "QA",
            }
            with ServiceClient(host, port, client_id="twin") as first:
                first.insert("acme", row)  # request id 0 under "twin"
            with ServiceClient(host, port, client_id="twin") as second:
                second.insert("acme", row)  # same key: replayed, not applied
            with ServiceClient(host, port) as probe:
                after = len(probe.query("acme", "EId", "E259"))
            assert after == before + 1  # exactly once
            assert registry.get("acme").stats()["deduplicated"] == 1
            assert service.stats()["deduplicated"] == 1
        finally:
            service.stop()

    def test_failure_outcomes_replay_as_failures(self):
        """A replayed request whose primary failed must see the recorded
        failure — never silently run the mutation a second time."""
        registry = make_registry()
        service = EncryptedSearchService(registry, num_workers=2).start()
        try:
            host, port = service.address
            bad_payload = ("not-a-mapping",)  # insert(values) wants a dict
            with ServiceClient(host, port, client_id="twin-f") as first:
                with pytest.raises(ServiceError):
                    first.call("acme", "insert", bad_payload)
            with ServiceClient(host, port, client_id="twin-f") as second:
                with pytest.raises(ServiceError):
                    # valid payload, but the key replays the recorded
                    # failure instead of executing this delivery
                    second.call(
                        "acme",
                        "insert",
                        ({"EId": "E259", "FirstName": "No", "LastName": "Never",
                          "SSN": "997", "Office": "9", "Dept": "QA"},),
                    )
            session = registry.get("acme")
            assert session.stats()["deduplicated"] == 1
            assert session.stats()["errors"] == 1  # only the primary ran
        finally:
            service.stop()


# -- admission accounting under client death ---------------------------------------


class TestAdmissionAccounting:
    def test_finish_runs_when_connection_dies_before_response(self):
        """The PR 9 gap: a connection gone by response time must not leak
        the pending slot — the drain barrier and stats() stay exact, and
        the undeliverable response is counted, not lost."""
        registry = make_registry()
        service = EncryptedSearchService(registry, num_workers=1).start()
        try:
            entered, release = _gate_worker(registry)
            host, port = service.address
            client = ServiceClient(host, port)
            client.submit("acme", "ping")
            assert entered.wait(timeout=10.0)
            client.close()  # the requester vanishes mid-execution
            _wait_until(
                lambda: service.stats()["open_connections"] == 0,
                message="dead connection cleanup",
            )
            release.set()
            _wait_until(
                lambda: service.stats()["pending"] == 0,
                message="pending slot release",
            )
            stats = service.stats()
            assert stats["admitted"] == 1
            assert stats["dropped_responses"] == 1
        finally:
            service.stop()
        assert _service_threads() == []


# -- client/connection lifecycle races ---------------------------------------------


class TestClientLifecycle:
    def test_socket_connection_close_is_concurrent_safe(self):
        left, right = socket.socketpair()
        try:
            connection = SocketConnection(left)
            errors = []

            def closer():
                try:
                    connection.close()
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)

            threads = [
                threading.Thread(target=closer, daemon=True) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=5.0)
            assert errors == []
            assert connection.closed
        finally:
            right.close()

    def test_death_mid_handshake_fails_construction_cleanly(self):
        """A server that accepts and hangs up before the hello must fail
        the constructor — no hang, no leaked receiver thread."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]
        accepted = []

        def accept_and_slam():
            sock, _addr = listener.accept()
            accepted.append(sock)
            sock.close()

        thread = threading.Thread(target=accept_and_slam, daemon=True)
        thread.start()
        try:
            with pytest.raises((OSError, EOFError)):
                ServiceClient(host, port, handshake_timeout=1.0)
            thread.join(timeout=5.0)
            assert "svc-client-recv" not in [
                t.name for t in threading.enumerate()
            ]
        finally:
            listener.close()

    def test_pending_futures_fail_exactly_once_when_server_dies(self):
        registry = make_registry()
        service = EncryptedSearchService(registry, num_workers=1).start()
        entered, release = _gate_worker(registry)
        host, port = service.address
        client = ServiceClient(host, port)
        try:
            in_flight = [client.submit("acme", "ping") for _ in range(4)]
            assert entered.wait(timeout=10.0)
            release.set()
            service.stop(drain=False)  # connections slam shut under the client
            resolved = []
            for future in in_flight:
                try:
                    resolved.append(future.result(timeout=10.0))
                except Exception as exc:
                    resolved.append(type(exc).__name__)
            # every future resolved exactly once — a hang here means a
            # future was never failed; an InvalidStateError in the receiver
            # means one was failed twice
            assert len(resolved) == 4
            client.close()
            client.close()  # idempotent under repeated/concurrent closers
        finally:
            service.stop()
            client.close()

    def test_retry_policy_is_deterministic_per_seed(self):
        import random as random_module

        policy = RetryPolicy(seed=11)
        first = [
            policy.delay(attempt, random_module.Random(11)) for attempt in range(4)
        ]
        second = [
            policy.delay(attempt, random_module.Random(11)) for attempt in range(4)
        ]
        assert first == second
        assert all(delay >= 0 for delay in first)
