"""Cross-module integration tests: end-to-end flows over multiple schemes,
larger synthetic datasets, the TPC-H workload, and the multi-cloud path."""

import random

import pytest

from repro.adversary.attacks import run_all_attacks
from repro.adversary.auditor import PartitionedSecurityAuditor
from repro.baselines.full_encryption import FullEncryptionBaseline
from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.secret_sharing import SecretSharingScheme
from repro.data.partition import partition_by_fraction
from repro.model.parameters import CostParameters
from repro.workloads.generator import generate_partitioned_dataset
from repro.workloads.queries import exhaustive_workload, skewed_workload
from repro.workloads.tpch import generate_lineitem


def build_engine(partition, attribute, scheme=None, seed=1):
    return QueryBinningEngine(
        partition=partition,
        attribute=attribute,
        scheme=scheme or NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(seed),
    ).setup()


class TestLargerSyntheticDataset:
    def test_correctness_at_scale(self):
        dataset = generate_partitioned_dataset(
            num_values=400,
            sensitivity_fraction=0.3,
            association_fraction=0.5,
            tuples_per_value=3,
            seed=77,
        )
        engine = build_engine(dataset.partition, dataset.attribute, seed=2)
        rng = random.Random(0)
        for value in rng.sample(dataset.all_values, 40):
            expected = {
                r.rid for r in dataset.relation if r[dataset.attribute] == value
            }
            assert {r.rid for r in engine.query(value)} == expected

    def test_bin_width_near_square_root(self):
        dataset = generate_partitioned_dataset(
            num_values=400, sensitivity_fraction=0.3, association_fraction=0.5, seed=77
        )
        engine = build_engine(dataset.partition, dataset.attribute, seed=2)
        ns_values = engine.metadata.num_non_sensitive_values
        assert engine.layout.max_non_sensitive_bin_size <= int(ns_values**0.5) + 2

    def test_full_attack_battery_fails_against_qb(self):
        dataset = generate_partitioned_dataset(
            num_values=100,
            sensitivity_fraction=0.4,
            association_fraction=0.5,
            tuples_per_value=4,
            skew_exponent=1.0,
            seed=13,
        )
        engine = build_engine(dataset.partition, dataset.attribute, seed=3)
        engine.execute_workload(exhaustive_workload(dataset.all_values))
        engine.execute_workload(skewed_workload(dataset.all_values, 100, seed=4))
        outcomes = run_all_attacks(
            engine.cloud.view_log,
            engine.cloud.stored_encrypted_rows,
            num_non_sensitive_values=len(dataset.non_sensitive_counts),
            true_counts=dataset.sensitive_counts,
        )
        assert all(not outcome.succeeded for outcome in outcomes), [
            (o.name, o.details) for o in outcomes if o.succeeded
        ]

    def test_audit_passes_over_full_domain(self):
        dataset = generate_partitioned_dataset(
            num_values=64,
            sensitivity_fraction=0.5,
            association_fraction=0.4,
            tuples_per_value=2,
            skew_exponent=0.8,
            seed=29,
        )
        engine = build_engine(dataset.partition, dataset.attribute, seed=7)
        engine.execute_workload(exhaustive_workload(dataset.all_values))
        auditor = PartitionedSecurityAuditor(
            num_non_sensitive_values=engine.metadata.num_non_sensitive_values,
            layout=engine.layout,
            sensitive_counts=engine.metadata.sensitive_counts,
        )
        report = auditor.audit(engine.cloud.view_log, full_domain_queried=True)
        assert report.secure, report.violations


class TestTpchWorkload:
    def test_qb_over_lineitem_partkey(self):
        lineitem = generate_lineitem(num_rows=3000, seed=11)
        partition = partition_by_fraction(lineitem, "L_PARTKEY", 0.2)
        engine = build_engine(partition, "L_PARTKEY", seed=5)
        rng = random.Random(1)
        values = lineitem.distinct_values("L_PARTKEY")
        for value in rng.sample(values, 15):
            expected = {r.rid for r in lineitem if r["L_PARTKEY"] == value}
            assert {r.rid for r in engine.query(value)} == expected

    def test_alpha_matches_partition(self):
        lineitem = generate_lineitem(num_rows=2000, seed=11)
        partition = partition_by_fraction(lineitem, "L_SUPPKEY", 0.4)
        engine = build_engine(partition, "L_SUPPKEY", seed=5)
        assert engine.metadata.alpha == pytest.approx(
            partition.sensitivity_fraction, abs=0.1
        )


class TestAlternativeSchemes:
    def test_secret_sharing_scheme_end_to_end(self):
        dataset = generate_partitioned_dataset(
            num_values=16, sensitivity_fraction=0.5, association_fraction=0.5, seed=19
        )
        engine = build_engine(
            dataset.partition, dataset.attribute, scheme=SecretSharingScheme(), seed=4
        )
        for value in dataset.all_values[:6]:
            expected = {
                r.rid for r in dataset.relation if r[dataset.attribute] == value
            }
            assert {r.rid for r in engine.query(value)} == expected

    def test_arx_scheme_with_skewed_counts(self):
        dataset = generate_partitioned_dataset(
            num_values=25,
            sensitivity_fraction=0.4,
            association_fraction=0.5,
            tuples_per_value=3,
            skew_exponent=1.0,
            seed=23,
        )
        engine = build_engine(
            dataset.partition, dataset.attribute, scheme=ArxIndexScheme(), seed=6
        )
        for value in dataset.all_values[:8]:
            expected = {
                r.rid for r in dataset.relation if r[dataset.attribute] == value
            }
            assert {r.rid for r in engine.query(value)} == expected


class TestQbVersusFullEncryptionCost:
    def test_modelled_eta_below_one_for_strong_crypto(self):
        dataset = generate_partitioned_dataset(
            num_values=100, sensitivity_fraction=0.3, association_fraction=0.5,
            tuples_per_value=2, seed=31,
        )
        engine = build_engine(dataset.partition, dataset.attribute, seed=9)
        params = CostParameters.from_ratios(gamma=25_000, selectivity=0.05)
        baseline = FullEncryptionBaseline(
            dataset.relation, dataset.attribute, NonDeterministicScheme(),
            cost_parameters=params,
        )
        from repro.model.cost import eta_simplified

        eta = eta_simplified(
            engine.metadata.alpha,
            engine.layout.max_sensitive_bin_size,
            engine.layout.max_non_sensitive_bin_size,
            params,
        )
        assert eta < 1.0
        assert baseline.modelled_query_seconds() > 0
