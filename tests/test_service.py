"""Service-layer tests: sessions, admission control, shutdown, parity.

Fast enough for tier-1 (the ``service`` marker's smoke contract): every
test runs against a real TCP server on an ephemeral loopback port, but with
the paper's 8-tuple Employee relation, so a full start/serve/stop cycle is
tens of milliseconds.  The latency/SLO characterization lives in
``benchmarks/bench_service_latency.py`` (``slowperf``).
"""

import threading
import time

import pytest

from repro.exceptions import (
    ConfigurationError,
    ServiceError,
    ServiceOverloadedError,
    UnknownTenantError,
)
from repro.owner.db_owner import DBOwner
from repro.service import EncryptedSearchService, ServiceClient, TenantRegistry
from repro.workloads.employee import build_employee_relation, employee_policy

pytestmark = pytest.mark.service


def make_registry(tenants=("acme",), attributes=("EId",)):
    registry = TenantRegistry()
    for name in tenants:
        registry.provision(
            name,
            build_employee_relation(),
            employee_policy(),
            attributes=attributes,
            permutation_seed=17,
        )
    return registry


@pytest.fixture
def service():
    svc = EncryptedSearchService(
        make_registry(("acme", "globex")), num_workers=2, queue_depth=16
    ).start()
    yield svc
    svc.stop()


def connect(service, **kwargs):
    host, port = service.address
    return ServiceClient(host, port, **kwargs)


class TestServiceBasics:
    def test_ping_query_insert_stats_roundtrip(self, service):
        with connect(service) as client:
            assert client.ping("acme") == "pong"
            rows = client.query("acme", "EId", "E259")
            reference = service.registry.get("acme").owner.query("EId", "E259")
            assert sorted(rid for rid, _values in rows) == sorted(
                row.rid for row in reference
            )
            # insert under an existing value: new values have no bin in the
            # frozen QB layout (rebinning is the IncrementalInserter's job)
            before = len(rows)
            client.insert(
                "acme",
                {"EId": "E259", "FirstName": "New", "LastName": "Hire",
                 "SSN": "999", "Office": "B1", "Dept": "QA"},
            )
            after = client.query("acme", "EId", "E259")
            assert len(after) == before + 1
            assert any(values["LastName"] == "Hire" for _rid, values in after)
            stats = client.stats("acme")
            assert stats["tenant"] == "acme"
            assert stats["served"] >= 3
            assert stats["errors"] == 0

    def test_unknown_tenant_is_typed(self, service):
        with connect(service) as client:
            with pytest.raises(UnknownTenantError):
                client.ping("initech")

    def test_domain_errors_cross_the_wire_typed(self, service):
        with connect(service) as client:
            # LastName exists in the schema but was never outsourced
            with pytest.raises(ConfigurationError):
                client.query("acme", "LastName", "Smith")
            with pytest.raises(ServiceError):
                client.call("acme", "no-such-op")

    def test_tenants_are_isolated(self, service):
        """Separate keystores, owners, and clouds per tenant."""
        acme = service.registry.get("acme")
        globex = service.registry.get("globex")
        assert acme.owner.keystore is not globex.owner.keystore
        assert acme.owner.cloud is not globex.owner.cloud
        with connect(service) as client:
            acme_rows = client.query("acme", "EId", "E259")
            globex_rows = client.query("globex", "EId", "E259")
            # same public dataset here, but served from distinct stores:
            # the per-tenant query counters move independently
            assert sorted(r for r, _v in acme_rows) == sorted(
                r for r, _v in globex_rows
            )
        assert acme.owner.cloud.stats.queries_served > 0
        assert acme.owner.cloud.stats.queries_served == (
            globex.owner.cloud.stats.queries_served
        )


class TestConcurrentClients:
    def test_concurrent_clients_match_direct_execution(self, service):
        """Service-level parity: N clients replaying a trace through the
        wire see exactly what direct (in-process) sequential execution sees."""
        values = ["E259", "E110", "E259", "E365", "E110", "E259"] * 2
        direct_owner = DBOwner(
            build_employee_relation(), employee_policy(), permutation_seed=17
        )
        direct_owner.outsource("EId")
        expected = {
            value: sorted(row.rid for row in direct_owner.query("EId", value))
            for value in set(values)
        }
        results = {}
        errors = []

        def client_loop(index):
            try:
                with connect(service) as client:
                    slice_values = values[index::3]
                    futures = [
                        client.submit("acme", "query", ("EId", value))
                        for value in slice_values
                    ]
                    results[index] = [
                        sorted(rid for rid, _values in future.result(timeout=30))
                        for future in futures
                    ]
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=client_loop, args=(index,), daemon=True)
            for index in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        for index in range(3):
            assert results[index] == [
                expected[value] for value in values[index::3]
            ]

    def test_pipelined_requests_resolve_out_of_order_safely(self, service):
        with connect(service) as client:
            futures = [
                client.submit("acme", "query", ("EId", value))
                for value in ["E259", "E110", "E365"] * 4
            ]
            resolved = [future.result(timeout=30) for future in futures]
            assert all(isinstance(rows, list) for rows in resolved)


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.002)


def _gate_worker(registry, tenant="acme"):
    """Monkeypatch the tenant session so the (single) worker parks on an
    Event: ``entered`` fires once the worker has *dequeued* a request and is
    executing it, ``release`` lets every gated request finish.  With the
    worker provably blocked, queue occupancy — and therefore which requests
    get rejected — is deterministic instead of a race against the worker's
    dequeue speed."""
    session = registry.get(tenant)
    original = session.execute
    entered = threading.Event()
    release = threading.Event()

    def gated_execute(op, payload):
        entered.set()
        release.wait(timeout=30.0)
        return original(op, payload)

    session.execute = gated_execute
    return entered, release


class TestAdmissionControl:
    def test_overload_rejects_instead_of_queueing(self):
        registry = make_registry(("acme",))
        service = EncryptedSearchService(
            registry, num_workers=1, queue_depth=2
        ).start()
        try:
            entered, release = _gate_worker(registry)
            with connect(service) as client:
                # occupy the worker, then confirm it has left the queue
                first = client.submit("acme", "ping")
                assert entered.wait(timeout=10.0)
                # fill the (now empty) queue to exactly queue_depth
                queued = [client.submit("acme", "ping") for _ in range(2)]
                _wait_until(
                    lambda: service.stats()["admitted"] == 3,
                    message="burst admission",
                )
                # worker blocked + queue full: every further request MUST
                # be rejected, immediately, by the reader thread
                overflow = [client.submit("acme", "ping") for _ in range(5)]
                for future in overflow:
                    with pytest.raises(ServiceOverloadedError):
                        future.result(timeout=10)
                release.set()
                assert first.result(timeout=10) == "pong"
                assert [f.result(timeout=10) for f in queued] == ["pong"] * 2
            stats = service.stats()
            assert stats["admitted"] == 3
            assert stats["rejected"] == 5
            assert stats["pending"] == 0
        finally:
            service.stop()

    def test_rejection_is_immediate_not_queued(self):
        """A rejected request's response arrives while the backlog is still
        being served — backpressure, not tail latency.  The worker is parked
        on an un-set Event, so the rejection can only have come from the
        admission path, never from the backlog draining first."""
        registry = make_registry(("acme",))
        service = EncryptedSearchService(
            registry, num_workers=1, queue_depth=1
        ).start()
        try:
            entered, release = _gate_worker(registry)
            with connect(service) as client:
                blocked = client.submit("acme", "ping")
                assert entered.wait(timeout=10.0)
                queued = client.submit("acme", "ping")
                _wait_until(
                    lambda: service.stats()["admitted"] == 2,
                    message="queue to fill",
                )
                with pytest.raises(ServiceOverloadedError):
                    client.submit("acme", "ping").result(timeout=10)
                # the backlog is provably still in flight behind the gate
                assert not blocked.done()
                assert not queued.done()
                release.set()
                assert blocked.result(timeout=10) == "pong"
                assert queued.result(timeout=10) == "pong"
        finally:
            service.stop()


class TestGracefulShutdown:
    def test_drain_serves_admitted_requests(self):
        registry = make_registry(("acme",))
        service = EncryptedSearchService(
            registry, num_workers=1, queue_depth=16
        ).start()
        session = registry.get("acme")
        original = session.execute
        session.execute = lambda op, payload: (
            time.sleep(0.05) or original(op, payload)
        )
        client = connect(service)
        futures = [client.submit("acme", "ping") for _ in range(5)]
        time.sleep(0.02)  # ensure admission happened before the stop
        service.stop(drain=True)
        # every admitted request was served before the teardown
        assert [future.result(timeout=5) for future in futures] == ["pong"] * 5
        assert service.stats()["pending"] == 0
        client.close()

    def test_stop_closes_tenants(self):
        registry = make_registry(("acme",))
        service = EncryptedSearchService(registry, num_workers=1).start()
        service.stop()
        with pytest.raises(ServiceError):
            registry.get("acme").execute("ping", ())

    def test_stop_is_idempotent_and_refuses_new_connections(self):
        service = EncryptedSearchService(make_registry(), num_workers=1).start()
        host, port = service.address
        service.stop()
        service.stop()
        with pytest.raises((ConnectionError, OSError, EOFError)):
            ServiceClient(host, port).ping("acme")
