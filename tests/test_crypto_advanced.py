"""Unit tests for OPE, secret sharing, Paillier, and DPF."""

import pytest

from repro.crypto.dpf import DistributedPointFunction
from repro.crypto.homomorphic import PaillierKeyPair, PaillierScheme, _is_probable_prime
from repro.crypto.ope import OrderPreservingEncoder
from repro.crypto.primitives import SecretKey
from repro.crypto.secret_sharing import (
    AdditiveSecretSharing,
    SecretSharingScheme,
    ShamirSecretSharing,
    Share,
)
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.exceptions import CryptoError


class TestOrderPreservingEncoder:
    def test_order_is_preserved(self):
        encoder = OrderPreservingEncoder(SecretKey.from_passphrase("ope"))
        domain = [5, 1, 9, 3, 7]
        encoder.build(domain)
        codes = [encoder.encode(v) for v in sorted(domain)]
        assert codes == sorted(codes)
        assert encoder.order_preserved()

    def test_encode_decode_round_trip(self):
        encoder = OrderPreservingEncoder()
        encoder.build(list(range(20)))
        for value in range(20):
            assert encoder.decode(encoder.encode(value)) == value

    def test_unknown_value_and_code_raise(self):
        encoder = OrderPreservingEncoder()
        encoder.build([1, 2, 3])
        with pytest.raises(CryptoError):
            encoder.encode(99)
        with pytest.raises(CryptoError):
            encoder.decode(-1)

    def test_empty_domain_rejected(self):
        with pytest.raises(CryptoError):
            OrderPreservingEncoder().build([])

    def test_bad_gap_rejected(self):
        with pytest.raises(CryptoError):
            OrderPreservingEncoder(max_gap=1)


class TestShamir:
    def test_share_and_reconstruct(self):
        sharing = ShamirSecretSharing(threshold=3, parties=5)
        secret = 123456789
        shares = sharing.share(secret)
        assert sharing.reconstruct(shares[:3]) == secret
        assert sharing.reconstruct(shares[2:]) == secret

    def test_below_threshold_rejected(self):
        sharing = ShamirSecretSharing(threshold=3, parties=5)
        shares = sharing.share(42)
        with pytest.raises(CryptoError):
            sharing.reconstruct(shares[:2])

    def test_additive_homomorphism_of_shares(self):
        sharing = ShamirSecretSharing(threshold=2, parties=3)
        a_shares = sharing.share(100)
        b_shares = sharing.share(23)
        summed = sharing.add_shares(a_shares, b_shares)
        assert sharing.reconstruct(summed) == 123

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CryptoError):
            ShamirSecretSharing(threshold=0, parties=3)
        with pytest.raises(CryptoError):
            ShamirSecretSharing(threshold=4, parties=3)
        with pytest.raises(CryptoError):
            ShamirSecretSharing(threshold=2, parties=5, prime=3)


class TestAdditiveSharing:
    def test_share_and_reconstruct(self):
        sharing = AdditiveSecretSharing(parties=4)
        shares = sharing.share(999)
        assert sharing.reconstruct(shares) == 999

    def test_all_shares_required(self):
        sharing = AdditiveSecretSharing(parties=3)
        shares = sharing.share(7)
        with pytest.raises(CryptoError):
            sharing.reconstruct(shares[:2])

    def test_at_least_two_parties(self):
        with pytest.raises(CryptoError):
            AdditiveSecretSharing(parties=1)


class TestSecretSharingScheme:
    def _rows(self):
        schema = Schema([Attribute("key"), Attribute("payload")])
        relation = Relation("r", schema)
        for i, key in enumerate(["x", "y", "x", "z"]):
            relation.insert({"key": key, "payload": str(i)}, sensitive=True)
        return list(relation.rows)

    def test_search_by_share_comparison(self):
        scheme = SecretSharingScheme(parties=3, threshold=2)
        rows = self._rows()
        stored = scheme.encrypt_rows(rows, "key")
        matches = scheme.search(stored, scheme.tokens_for_values(["x"], "key"))
        assert {m.rid for m in matches} == {r.rid for r in rows if r["key"] == "x"}

    def test_scan_count_grows_linearly(self):
        scheme = SecretSharingScheme()
        stored = scheme.encrypt_rows(self._rows(), "key")
        scheme.search(stored, scheme.tokens_for_values(["x"], "key"))
        assert scheme.scan_count == len(stored)

    def test_leakage_hides_access_pattern(self):
        assert not SecretSharingScheme().leakage.leaks_access_pattern


class TestPaillier:
    @pytest.fixture(scope="class")
    def keypair(self):
        return PaillierKeyPair.generate(bits=128)

    def test_encrypt_decrypt(self, keypair):
        for value in (0, 1, 42, 10**9):
            assert keypair.private.decrypt(keypair.public.encrypt(value)) == value

    def test_encryption_is_probabilistic(self, keypair):
        assert keypair.public.encrypt(5) != keypair.public.encrypt(5)

    def test_homomorphic_addition(self, keypair):
        c = keypair.public.add(keypair.public.encrypt(30), keypair.public.encrypt(12))
        assert keypair.private.decrypt(c) == 42

    def test_add_plain_and_multiply_plain(self, keypair):
        c = keypair.public.add_plain(keypair.public.encrypt(10), 5)
        assert keypair.private.decrypt(c) == 15
        c2 = keypair.public.multiply_plain(keypair.public.encrypt(7), 6)
        assert keypair.private.decrypt(c2) == 42

    def test_negative_values_wrap_mod_n(self, keypair):
        c = keypair.public.add(keypair.public.encrypt(10), keypair.public.encrypt(-10))
        assert keypair.private.decrypt(c) == 0

    def test_miller_rabin_agrees_on_small_numbers(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31}
        for n in range(2, 32):
            assert _is_probable_prime(n) == (n in primes)

    def test_paillier_scheme_search(self):
        scheme = PaillierScheme(PaillierKeyPair.generate(bits=128))
        schema = Schema([Attribute("key"), Attribute("payload")])
        relation = Relation("r", schema)
        for i, key in enumerate(["a", "b", "a"]):
            relation.insert({"key": key, "payload": str(i)}, sensitive=True)
        stored = scheme.encrypt_rows(list(relation.rows), "key")
        matches = scheme.search(stored, scheme.tokens_for_values(["a"], "key"))
        assert len(matches) == 2
        assert scheme.homomorphic_ops >= len(stored)


class TestDPF:
    def test_point_function_correctness(self):
        dpf = DistributedPointFunction(domain_bits=6)
        key0, key1 = dpf.generate(alpha=37, beta=5)
        for x in range(dpf.domain_size):
            combined = dpf.reconstruct(dpf.evaluate(key0, x), dpf.evaluate(key1, x))
            assert combined == (5 if x == 37 else 0)

    def test_full_domain_evaluation(self):
        dpf = DistributedPointFunction(domain_bits=4)
        key0, key1 = dpf.generate(alpha=3, beta=1)
        sums = [
            dpf.reconstruct(a, b)
            for a, b in zip(dpf.evaluate_full(key0), dpf.evaluate_full(key1))
        ]
        assert sums.index(1) == 3 and sum(sums) == 1

    def test_single_share_looks_uninformative(self):
        dpf = DistributedPointFunction(domain_bits=5)
        key0, _key1 = dpf.generate(alpha=9, beta=1)
        shares = dpf.evaluate_full(key0)
        # One party's shares alone should not be a point function: more than
        # one position must be non-zero (overwhelmingly likely).
        assert sum(1 for s in shares if s != 0) > 1

    def test_alpha_out_of_domain_rejected(self):
        dpf = DistributedPointFunction(domain_bits=3)
        with pytest.raises(CryptoError):
            dpf.generate(alpha=8)
        key0, _ = dpf.generate(alpha=1)
        with pytest.raises(CryptoError):
            dpf.evaluate(key0, 8)

    def test_invalid_domain_rejected(self):
        with pytest.raises(CryptoError):
            DistributedPointFunction(domain_bits=0)
