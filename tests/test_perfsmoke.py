"""``perfsmoke``: seconds-scale perf-path regression guards in the tier-1 run.

The full-scale throughput benchmarks (``benchmarks/bench_perf_*.py``) are
minutes of wall clock and excluded from the default run, which historically
meant perf-path regressions only surfaced when someone re-ran them.  These
tests are the fast tripwire: every execution config — sequential, batched,
sharded×{thread,process} members, tag-index and bin-store search paths — runs
over a small relation in the default pytest run, and the *deterministic*
signatures of the optimisations (interned retrievals skipping scheme compute,
interned requests, shared view templates) are asserted via counters rather
than wall clock, so they cannot flake on slow CI yet fail immediately if the
hot path regresses to per-query recomputation.

Select just these with ``pytest -m perfsmoke``.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.cloud.multi_cloud import MultiCloud
from repro.cloud.process_member import process_backend_available
from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.searchable import SSEScheme
from repro.crypto.primitives import SecretKey
from repro.workloads.generator import generate_partitioned_dataset

pytestmark = [pytest.mark.perfsmoke]

#: all fleet configs the smoke covers; None = single server (batched)
FLEET_CONFIGS = (
    ("single", None),
    ("sharded-thread", "thread"),
    ("sharded-process", "process"),
)


class CountingSSEScheme(SSEScheme):
    """SSE with a cloud-side work odometer (trial-decryption call counter)."""

    def __init__(self, key=None):
        super().__init__(key)
        self.search_calls = 0
        self.rows_trialed = 0

    def search(self, stored, tokens):
        self.search_calls += 1
        self.rows_trialed += len(stored)
        return super().search(stored, tokens)


def _dataset(seed: int = 19, num_values: int = 300):
    return generate_partitioned_dataset(
        num_values=num_values,
        sensitivity_fraction=0.5,
        association_fraction=0.6,
        tuples_per_value=2,
        seed=seed,
    )


def _engine(dataset, scheme, backend=None, use_encrypted_indexes=True):
    engine = QueryBinningEngine(
        partition=dataset.partition,
        attribute=dataset.attribute,
        scheme=scheme,
        cloud=CloudServer(use_encrypted_indexes=use_encrypted_indexes),
        rng=random.Random(5),
        multi_cloud=(
            MultiCloud(3, use_encrypted_indexes=use_encrypted_indexes,
                       member_backend=backend)
            if backend is not None
            else None
        ),
    )
    return engine.setup()


def _workload(dataset, repeats: int = 2, seed: int = 37) -> List[object]:
    values = list(dataset.all_values) * repeats
    random.Random(seed).shuffle(values)
    return values


@pytest.mark.parametrize(
    "config_name,backend",
    [
        pytest.param(
            name,
            backend,
            marks=(
                [pytest.mark.skipif(
                    not process_backend_available(),
                    reason="no fork start method",
                )]
                if backend == "process"
                else []
            ),
        )
        for name, backend in FLEET_CONFIGS
    ],
)
@pytest.mark.parametrize("scheme_name", ["tag-index", "sse-bin-store"])
def test_every_config_serves_the_workload(config_name, backend, scheme_name):
    """All configs × both encrypted-search paths answer a repeated workload
    with bit-identical results (vs. ground truth), seconds-fast."""
    dataset = _dataset()
    scheme = (
        DeterministicScheme(SecretKey.from_passphrase("perfsmoke"))
        if scheme_name == "tag-index"
        else SSEScheme(SecretKey.from_passphrase("perfsmoke"))
    )
    engine = _engine(dataset, scheme, backend=backend)
    try:
        workload = _workload(dataset)
        placement = "batched" if backend is None else "sharded"
        outcome = engine.execute_workload_with_rows(workload, placement=placement)
        attribute = dataset.attribute
        by_value = {}
        for relation in (dataset.partition.sensitive, dataset.partition.non_sensitive):
            for row in relation.rows:
                by_value.setdefault(row[attribute], []).append(row.rid)
        for value, (rows, _trace) in zip(workload, outcome):
            assert sorted(row.rid for row in rows) == sorted(by_value.get(value, []))
    finally:
        if engine.multi_cloud is not None:
            engine.multi_cloud.close()


def test_interned_retrievals_skip_scheme_recompute():
    """The perf contract of the interning tentpole: a repeated workload does
    scheme compute once per distinct bin pair — across batches and across the
    sequential path — while views/stats/transfers still accrue per query."""
    dataset = _dataset()
    scheme = CountingSSEScheme(SecretKey.from_passphrase("perfsmoke"))
    engine = _engine(dataset, scheme)
    workload = _workload(dataset, repeats=1)

    engine.execute_workload(workload, placement="batched")
    calls_first, trialed_first = scheme.search_calls, scheme.rows_trialed
    views_first = len(engine.cloud.view_log)
    assert calls_first > 0

    # the same workload again: zero additional cloud-side scheme compute...
    engine.execute_workload(workload, placement="batched")
    assert scheme.search_calls == calls_first
    assert scheme.rows_trialed == trialed_first
    # ...but every query still produced its own view and accounting
    assert len(engine.cloud.view_log) == 2 * views_first
    assert engine.cloud.stats.queries_served == 2 * views_first

    # the sequential path shares the same interned retrievals
    engine.query(workload[0])
    assert scheme.search_calls == calls_first


def test_interned_requests_and_view_templates_are_shared():
    """Steady-state queries reuse the same frozen request object per bin pair
    and the same view template per distinct request — identity, not equality,
    which is what makes the per-query cost a couple of dict probes."""
    dataset = _dataset(num_values=60)
    engine = _engine(
        dataset, DeterministicScheme(SecretKey.from_passphrase("perfsmoke"))
    )
    value = dataset.all_values[0]
    requests_one, _ = engine.build_requests([value])
    requests_two, _ = engine.build_requests([value])
    assert requests_one[0] is requests_two[0]

    engine.execute_workload([value, value], placement="batched")
    records = engine.cloud.view_log.records
    assert len(records) == 2
    (first_id, first_template), (second_id, second_template) = records[-2:]
    assert second_id == first_id + 1
    assert second_template is first_template

    # request halves are cached on the request (sharded splitting hot path)
    request = requests_one[0]
    assert request.sensitive_half() is request.sensitive_half()
    assert request.non_sensitive_half() is request.non_sensitive_half()


def test_observation_snapshot_is_constant_time_shape():
    """Snapshots hold plain integers (copy-on-write contract): no view or
    transfer-log copies regardless of how much the server observed."""
    dataset = _dataset(num_values=60)
    engine = _engine(
        dataset, DeterministicScheme(SecretKey.from_passphrase("perfsmoke"))
    )
    engine.execute_workload(_workload(dataset, repeats=2), placement="batched")
    snapshot = engine.cloud.observation_snapshot()
    assert isinstance(snapshot.view_count, int)
    assert isinstance(snapshot.network_log_length, int)
    assert all(isinstance(value, int) for value in snapshot.stats)
    flat = [count for _attr, count in snapshot.index_probe_counts]
    assert all(isinstance(value, int) for value in flat)


VECTOR_SCHEMES = {
    "deterministic": "repro.crypto.deterministic:DeterministicScheme",
    "arx-index": "repro.crypto.arx_index:ArxIndexScheme",
    "non-deterministic": "repro.crypto.nondeterministic:NonDeterministicScheme",
    "sse": "repro.crypto.searchable:SSEScheme",
}


def _load_scheme(spec: str, key):
    import importlib

    module_name, _, class_name = spec.partition(":")
    return getattr(importlib.import_module(module_name), class_name)(key)


@pytest.mark.parametrize("scheme_name", sorted(VECTOR_SCHEMES))
def test_vector_schemes_take_the_batch_path(scheme_name):
    """Tripwire for the vectorization tentpole: a full setup + workload on a
    vector-capable scheme must route every hot loop through the batch entry
    points (``batch_calls``) and never fall back to the scalar reference
    loops (``scalar_fallback_calls``).  A refactor that silently loses a
    ``*_many`` override fails here, not in a minutes-long benchmark run."""
    dataset = _dataset(num_values=120)
    scheme = _load_scheme(
        VECTOR_SCHEMES[scheme_name], SecretKey.from_passphrase("perfsmoke")
    )
    assert scheme.supports_batch
    engine = _engine(dataset, scheme)
    engine.execute_workload(_workload(dataset, repeats=1), placement="batched")
    assert scheme.batch_calls > 0
    assert scheme.scalar_fallback_calls == 0


def test_forcing_scalar_mode_is_observable_in_the_counters():
    """``use_batch=False`` (the parity baseline switch) really disables the
    batch paths — guarding the other side of the tripwire above."""
    dataset = _dataset(num_values=60)
    scheme = DeterministicScheme(SecretKey.from_passphrase("perfsmoke"))
    scheme.use_batch = False
    engine = _engine(dataset, scheme)
    engine.execute_workload(_workload(dataset, repeats=1), placement="batched")
    assert scheme.batch_calls == 0
    assert scheme.scalar_fallback_calls > 0
