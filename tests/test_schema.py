"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import Attribute, Schema, common_schema
from repro.exceptions import SchemaError, UnknownAttributeError


def make_schema():
    return Schema(
        [
            Attribute("EId", dtype=str),
            Attribute("SSN", dtype=str, sensitive=True),
            Attribute("Age", dtype=int, searchable=False),
        ]
    )


class TestAttribute:
    def test_validate_accepts_correct_type(self):
        Attribute("name", dtype=str).validate("alice")

    def test_validate_accepts_none(self):
        Attribute("name", dtype=str).validate(None)

    def test_validate_accepts_int_for_float(self):
        Attribute("price", dtype=float).validate(3)

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            Attribute("age", dtype=int).validate("forty")


class TestSchema:
    def test_names_preserved_in_order(self):
        assert make_schema().names == ("EId", "SSN", "Age")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a"), Attribute("a")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_contains_and_getitem(self):
        schema = make_schema()
        assert "SSN" in schema
        assert schema["SSN"].sensitive is True

    def test_unknown_attribute_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_schema()["missing"]

    def test_sensitive_and_searchable_names(self):
        schema = make_schema()
        assert schema.sensitive_names == ("SSN",)
        assert schema.searchable_names == ("EId", "SSN")

    def test_project_preserves_order_given(self):
        projected = make_schema().project(["Age", "EId"])
        assert projected.names == ("Age", "EId")

    def test_drop_removes_attributes(self):
        dropped = make_schema().drop(["SSN"])
        assert dropped.names == ("EId", "Age")

    def test_drop_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_schema().drop(["nope"])

    def test_drop_everything_raises(self):
        with pytest.raises(SchemaError):
            make_schema().drop(["EId", "SSN", "Age"])

    def test_validate_row_accepts_exact_keys(self):
        make_schema().validate_row({"EId": "E1", "SSN": "111", "Age": 30})

    def test_validate_row_rejects_missing_and_extra(self):
        with pytest.raises(SchemaError):
            make_schema().validate_row({"EId": "E1"})
        with pytest.raises(SchemaError):
            make_schema().validate_row(
                {"EId": "E1", "SSN": "111", "Age": 30, "Extra": 1}
            )

    def test_from_names_marks_sensitive(self):
        schema = Schema.from_names(["a", "b"], sensitive=["b"])
        assert schema["b"].sensitive and not schema["a"].sensitive

    def test_from_names_unknown_sensitive_raises(self):
        with pytest.raises(SchemaError):
            Schema.from_names(["a"], sensitive=["z"])

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())


class TestCommonSchema:
    def test_same_names_are_compatible(self):
        assert common_schema(make_schema(), make_schema()) is not None

    def test_different_names_are_incompatible(self):
        other = Schema([Attribute("x")])
        assert common_schema(make_schema(), other) is None
