"""Concurrent execution parity: N clients replaying a trace vs sequential.

The service layer multiplexes many client connections onto shared engines,
so the parity claim gains a third axis: not just *how* a workload is placed
(sequential / batched / sharded) but *who* drives it — one thread or many.
These tests pin the concurrency contract the locking sweep establishes:
N concurrent clients replaying a trace against ONE engine produce the same
per-query results, field-identical traces, the same per-server adversarial
view multisets, and the same aggregated per-member statistics as a single
sequential client.  Before the engine/server/fleet locks, concurrent
clients corrupted the owner-side caches (token, interned-request, plaintext
bin) and the per-server observation logs; any regression here reproduces as
a parity failure.
"""

import pytest

from repro.cloud.process_member import process_backend_available
from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}

pytestmark = pytest.mark.multicloud


class TestConcurrentParity:
    """Thread-backed members: every scheme, batched and sharded placement."""

    @pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
    @pytest.mark.parametrize("placement", ["batched", "sharded"])
    def test_concurrent_clients_match_sequential(
        self, parity_harness, scheme_name, placement
    ):
        harness = parity_harness(SCHEMES[scheme_name])
        workload = harness.workload(repeats=2)
        reference = harness.run(placement, workload)
        concurrent = harness.run_concurrent(placement, workload, num_clients=4)
        harness.assert_concurrent_parity(reference, concurrent)

    def test_concurrent_sequential_placement_matches(self, parity_harness):
        """Per-query (unbatched) execution from many threads also agrees."""
        harness = parity_harness(DeterministicScheme)
        workload = harness.workload(repeats=2)
        reference = harness.run("sequential", workload)
        concurrent = harness.run_concurrent("sequential", workload, num_clients=4)
        harness.assert_concurrent_parity(reference, concurrent)

    def test_more_clients_than_queries(self, parity_harness):
        """Degenerate split: some clients get empty slices; still exact."""
        harness = parity_harness(NonDeterministicScheme)
        workload = harness.workload(repeats=1)[:3]
        reference = harness.run("batched", workload)
        concurrent = harness.run_concurrent("batched", workload, num_clients=8)
        harness.assert_concurrent_parity(reference, concurrent)

    def test_no_member_sees_both_halves_under_concurrency(self, parity_harness):
        """Interleaved client batches never weaken non-collusion placement."""
        harness = parity_harness(SSEScheme)
        workload = harness.workload(repeats=2)
        run = harness.run_concurrent("sharded", workload, num_clients=4)
        assert run.fleet is not None
        for server in run.fleet.servers:
            for view in server.view_log:
                has_cleartext = bool(view.non_sensitive_request)
                has_tokens = view.sensitive_request_size > 0
                assert not (has_cleartext and has_tokens), (
                    f"{server.name} observed both halves of a request"
                )


@pytest.mark.skipif(
    not process_backend_available(),
    reason="process-backed members need the fork start method",
)
class TestConcurrentParityProcessBackend:
    """Concurrent clients against real worker processes (RPC serialization)."""

    @pytest.mark.parametrize("scheme_name", ["deterministic", "sse"])
    def test_concurrent_clients_match_sequential(self, parity_harness, scheme_name):
        harness = parity_harness(
            SCHEMES[scheme_name], num_shards=3, member_backend="process"
        )
        workload = harness.workload(repeats=1)
        reference = harness.run("sharded", workload)
        concurrent = harness.run_concurrent("sharded", workload, num_clients=3)
        harness.assert_concurrent_parity(reference, concurrent)
