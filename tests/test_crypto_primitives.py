"""Unit tests for the low-level cryptographic primitives."""

import pytest

from repro.crypto.primitives import (
    SecretKey,
    aead_decrypt,
    aead_encrypt,
    constant_time_equals,
    decode_value,
    encode_value,
    has_hardware_aes,
    keyed_permutation,
    prf,
    prf_int,
    random_bytes,
)
from repro.exceptions import CryptoError, IntegrityError


class TestKeys:
    def test_generate_produces_distinct_keys(self):
        assert SecretKey.generate().material != SecretKey.generate().material

    def test_passphrase_derivation_is_deterministic(self):
        a = SecretKey.from_passphrase("hunter2")
        b = SecretKey.from_passphrase("hunter2")
        assert a.material == b.material

    def test_derive_is_deterministic_and_domain_separated(self):
        key = SecretKey.from_passphrase("k")
        assert key.derive("a").material == key.derive("a").material
        assert key.derive("a").material != key.derive("b").material

    def test_repr_does_not_leak_material(self):
        key = SecretKey.generate()
        assert key.material.hex() not in repr(key)


class TestPrf:
    def test_prf_deterministic(self):
        assert prf(b"k", b"m") == prf(b"k", b"m")

    def test_prf_key_and_message_sensitivity(self):
        assert prf(b"k1", b"m") != prf(b"k2", b"m")
        assert prf(b"k", b"m1") != prf(b"k", b"m2")

    def test_prf_int_in_range(self):
        for modulus in (1, 2, 7, 1000):
            assert 0 <= prf_int(b"k", b"m", modulus) < modulus

    def test_prf_int_rejects_bad_modulus(self):
        with pytest.raises(CryptoError):
            prf_int(b"k", b"m", 0)

    def test_constant_time_equals(self):
        assert constant_time_equals(b"abc", b"abc")
        assert not constant_time_equals(b"abc", b"abd")


class TestValueEncoding:
    @pytest.mark.parametrize(
        "value", ["hello", "", 0, -17, 2**70, 3.5, True, False, None, ("t", 1)]
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_distinct_types_do_not_collide(self):
        assert encode_value(1) != encode_value("1")
        assert encode_value(True) != encode_value(1)

    def test_malformed_blob_rejected(self):
        with pytest.raises(CryptoError):
            decode_value(b"xx")
        with pytest.raises(CryptoError):
            decode_value(b"q:junk")


class TestKeyedPermutation:
    def test_permutation_is_a_permutation(self):
        items = list(range(50))
        permuted = keyed_permutation(items, SecretKey.from_passphrase("p"))
        assert sorted(permuted) == items

    def test_permutation_deterministic_per_key(self):
        items = list(range(20))
        key = SecretKey.from_passphrase("p")
        assert keyed_permutation(items, key) == keyed_permutation(items, key)

    def test_permutation_differs_across_keys(self):
        items = list(range(40))
        first = keyed_permutation(items, SecretKey.from_passphrase("a"))
        second = keyed_permutation(items, SecretKey.from_passphrase("b"))
        assert first != second

    def test_empty_and_singleton(self):
        key = SecretKey.generate()
        assert keyed_permutation([], key) == []
        assert keyed_permutation(["x"], key) == ["x"]


class TestAead:
    def test_round_trip(self):
        key = SecretKey.generate()
        blob = aead_encrypt(key, b"attack at dawn")
        assert aead_decrypt(key, blob) == b"attack at dawn"

    def test_probabilistic(self):
        key = SecretKey.generate()
        assert aead_encrypt(key, b"same") != aead_encrypt(key, b"same")

    def test_wrong_key_fails(self):
        blob = aead_encrypt(SecretKey.generate(), b"secret")
        with pytest.raises((IntegrityError, CryptoError)):
            aead_decrypt(SecretKey.generate(), blob)

    def test_tampering_detected(self):
        key = SecretKey.generate()
        blob = bytearray(aead_encrypt(key, b"secret payload"))
        blob[-1] ^= 0xFF
        with pytest.raises((IntegrityError, CryptoError)):
            aead_decrypt(key, bytes(blob))

    def test_associated_data_checked(self):
        key = SecretKey.generate()
        blob = aead_encrypt(key, b"secret", associated_data=b"ctx")
        assert aead_decrypt(key, blob, associated_data=b"ctx") == b"secret"
        with pytest.raises((IntegrityError, CryptoError)):
            aead_decrypt(key, blob, associated_data=b"other")

    def test_truncated_ciphertext_rejected(self):
        with pytest.raises((IntegrityError, CryptoError)):
            aead_decrypt(SecretKey.generate(), b"\x01short")

    def test_random_bytes_length_and_uniqueness(self):
        assert len(random_bytes(16)) == 16
        assert random_bytes(16) != random_bytes(16)

    def test_hardware_flag_is_boolean(self):
        assert isinstance(has_hardware_aes(), bool)
