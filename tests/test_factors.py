"""Unit tests for approximately-square factorisation."""

import math

import pytest

from repro.core.factors import (
    approx_square_factors,
    factor_candidates,
    nearest_square,
    square_side,
)
from repro.exceptions import BinningError


class TestApproxSquareFactors:
    @pytest.mark.parametrize(
        "n, expected",
        [
            (1, (1, 1)),
            (4, (2, 2)),
            (10, (5, 2)),
            (16, (4, 4)),
            (12, (4, 3)),
            (15, (5, 3)),
            (82, (41, 2)),
            (100, (10, 10)),
            (97, (97, 1)),  # prime
        ],
    )
    def test_known_factorisations(self, n, expected):
        assert approx_square_factors(n) == expected

    def test_product_and_ordering_invariants(self):
        for n in range(1, 500):
            x, y = approx_square_factors(n)
            assert x * y == n
            assert x >= y >= 1

    def test_factors_are_closest_pair(self):
        for n in range(1, 200):
            x, y = approx_square_factors(n)
            best_gap = min(
                n // d - d for d in range(1, int(math.isqrt(n)) + 1) if n % d == 0
            )
            assert x - y == best_gap

    def test_non_positive_rejected(self):
        with pytest.raises(BinningError):
            approx_square_factors(0)
        with pytest.raises(BinningError):
            approx_square_factors(-5)


class TestNearestSquare:
    @pytest.mark.parametrize(
        "n, expected", [(1, 1), (2, 1), (3, 4), (82, 81), (80, 81), (99, 100), (100, 100)]
    )
    def test_known_values(self, n, expected):
        assert nearest_square(n) == expected

    def test_square_side_positive(self):
        for n in range(1, 200):
            assert square_side(n) >= 1
            assert square_side(n) ** 2 == nearest_square(n)

    def test_non_positive_rejected(self):
        with pytest.raises(BinningError):
            nearest_square(0)


class TestFactorCandidates:
    def test_candidates_are_feasible(self):
        for ns in range(1, 150, 7):
            for s in (0, ns // 2, ns):
                for sensitive_bins, non_sensitive_bins in factor_candidates(ns, s):
                    sensitive_width = math.ceil(s / sensitive_bins) if s else 0
                    non_sensitive_width = math.ceil(ns / non_sensitive_bins)
                    assert sensitive_width <= non_sensitive_bins
                    assert non_sensitive_width <= sensitive_bins

    def test_prime_counts_get_square_candidate(self):
        candidates = factor_candidates(41, 20)
        assert any(abs(x - y) <= 1 for x, y in candidates)

    def test_paper_example_82(self):
        # 82 = 41 x 2 factorisation is poor; the square candidate (9-ish bins)
        # must be offered so the planner can pick it.
        candidates = factor_candidates(82, 41)
        assert any(x <= 10 and y <= 11 for x, y in candidates)

    def test_zero_non_sensitive_rejected(self):
        with pytest.raises(BinningError):
            factor_candidates(0, 5)
        with pytest.raises(BinningError):
            factor_candidates(10, -1)
