"""Unit tests for the Bin / BinLayout data structures."""

import pytest

from repro.core.bins import Bin, BinLayout
from repro.exceptions import BinningError


class TestBin:
    def test_append_fills_first_empty_slot(self):
        bin_ = Bin(index=0, slots=["a", None, "c"])
        position = bin_.append("b")
        assert position == 1
        assert bin_.values == ("a", "b", "c")

    def test_append_grows_when_full(self):
        bin_ = Bin(index=0, slots=["a"])
        assert bin_.append("b") == 1
        assert bin_.slots == ["a", "b"]

    def test_place_grows_slots(self):
        bin_ = Bin(index=0)
        bin_.place(3, "x")
        assert bin_.slots == [None, None, None, "x"]

    def test_place_conflict_rejected(self):
        bin_ = Bin(index=0, slots=["a"])
        with pytest.raises(BinningError):
            bin_.place(0, "b")
        bin_.place(0, "a")  # idempotent placement of the same value is fine

    def test_place_negative_rejected(self):
        with pytest.raises(BinningError):
            Bin(index=0).place(-1, "x")

    def test_position_of(self):
        bin_ = Bin(index=0, slots=["a", None, "b"])
        assert bin_.position_of("b") == 2
        with pytest.raises(BinningError):
            bin_.position_of("zzz")

    def test_contains_iter_len_skip_empty(self):
        bin_ = Bin(index=0, slots=["a", None, "b"])
        assert "a" in bin_ and None not in list(bin_)
        assert len(bin_) == 2
        assert bin_.size == 2


class TestBinLayout:
    def _layout(self):
        sensitive = [Bin(0, ["s0", "s2"]), Bin(1, ["s1", "s3"])]
        non_sensitive = [Bin(0, ["s0", "s1"]), Bin(1, ["ns0", "ns1"])]
        return BinLayout(sensitive, non_sensitive, attribute="A")

    def test_locations(self):
        layout = self._layout()
        assert layout.locate_sensitive("s3") == (1, 1)
        assert layout.locate_non_sensitive("ns1") == (1, 1)
        assert layout.locate_sensitive("missing") is None

    def test_contains(self):
        layout = self._layout()
        assert "s0" in layout and "ns0" in layout and "zzz" not in layout

    def test_counts_and_sizes(self):
        layout = self._layout()
        assert layout.num_sensitive_bins == 2
        assert layout.num_non_sensitive_bins == 2
        assert layout.max_sensitive_bin_size == 2
        assert layout.max_non_sensitive_bin_size == 2

    def test_bin_accessors_raise_for_bad_index(self):
        layout = self._layout()
        with pytest.raises(BinningError):
            layout.sensitive_bin(5)
        with pytest.raises(BinningError):
            layout.non_sensitive_bin(5)

    def test_duplicate_placement_rejected(self):
        with pytest.raises(BinningError):
            BinLayout([Bin(0, ["a"]), Bin(1, ["a"])], [Bin(0, [])])

    def test_validate_accepts_transposed_associations(self):
        # s0 at (bin 0, pos 0) appears in non-sensitive bin 0 at pos 0: OK.
        self._layout().validate()

    def test_validate_rejects_misplaced_association(self):
        sensitive = [Bin(0, ["v"]), Bin(1, ["w"])]
        # "v" sits at sensitive position 0 but in non-sensitive bin 1: invalid.
        non_sensitive = [Bin(0, ["x"]), Bin(1, ["v"])]
        layout = BinLayout(sensitive, non_sensitive)
        with pytest.raises(BinningError):
            layout.validate()

    def test_validate_rejects_position_beyond_bins(self):
        sensitive = [Bin(0, ["a", "b", "c"])]
        non_sensitive = [Bin(0, ["x"])]
        layout = BinLayout(sensitive, non_sensitive)
        with pytest.raises(BinningError):
            layout.validate()

    def test_describe_mentions_fake_tuples(self):
        layout = BinLayout(
            [Bin(0, ["a"])], [Bin(0, ["b"])], fake_tuples={0: 3}, attribute="A"
        )
        assert "+3 fake" in layout.describe()
