"""Tests for the access-pattern-hiding substrates: Path ORAM and two-server PIR."""

import secrets

import pytest

from repro.crypto.oram import DUMMY_BLOCK_ID, ObliviousRowStore, PathORAM, PathORAMServer
from repro.crypto.pir import TwoServerPIR
from repro.crypto.primitives import SecretKey
from repro.exceptions import CryptoError


class TestPathORAM:
    def test_read_after_write(self):
        oram = PathORAM(capacity=16, key=SecretKey.from_passphrase("oram"))
        oram.write(3, b"hello")
        oram.write(7, b"world")
        assert oram.read(3) == b"hello"
        assert oram.read(7) == b"world"

    def test_unwritten_block_reads_none(self):
        oram = PathORAM(capacity=8)
        assert oram.read(5) is None

    def test_overwrite_updates_value(self):
        oram = PathORAM(capacity=8)
        oram.write(2, b"v1")
        oram.write(2, b"v2")
        assert oram.read(2) == b"v2"

    def test_many_blocks_survive_interleaved_accesses(self):
        oram = PathORAM(capacity=64)
        expected = {}
        for block_id in range(40):
            payload = f"payload-{block_id}".encode()
            oram.write(block_id, payload)
            expected[block_id] = payload
        # interleave reads and rewrites
        for block_id in range(0, 40, 3):
            expected[block_id] = f"updated-{block_id}".encode()
            oram.write(block_id, expected[block_id])
        for block_id, payload in expected.items():
            assert oram.read(block_id) == payload

    def test_each_access_touches_exactly_one_path(self):
        oram = PathORAM(capacity=32)
        reads_before = oram.server.bucket_reads
        oram.write(1, b"x")
        assert oram.server.bucket_reads - reads_before == oram.path_length

    def test_server_never_sees_plaintext(self):
        oram = PathORAM(capacity=8)
        secret = b"super-secret-row-payload"
        oram.write(0, secret)
        stored = b"".join(
            ciphertext
            for index in range(len(oram.server))
            for ciphertext in oram.server.read_bucket(index)
        )
        assert secret not in stored

    def test_out_of_range_block_rejected(self):
        oram = PathORAM(capacity=4)
        with pytest.raises(CryptoError):
            oram.read(4)
        with pytest.raises(CryptoError):
            oram.write(-1, b"x")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CryptoError):
            PathORAM(capacity=0)
        with pytest.raises(CryptoError):
            PathORAM(capacity=4, bucket_size=0)
        with pytest.raises(CryptoError):
            PathORAM(capacity=64, server=PathORAMServer(num_buckets=3))

    def test_stash_stays_bounded(self):
        oram = PathORAM(capacity=32)
        for round_ in range(3):
            for block_id in range(32):
                oram.write(block_id, f"{round_}-{block_id}".encode())
        # A healthy Path ORAM keeps its stash tiny relative to capacity.
        assert oram.stats.stash_peak <= 32
        assert oram.stash_size <= oram.stats.stash_peak


class TestObliviousRowStore:
    def test_store_and_fetch_rows(self):
        store = ObliviousRowStore(capacity=16)
        store.store_row(101, b"row-101")
        store.store_row(202, b"row-202")
        assert store.fetch_row(101) == b"row-101"
        assert store.fetch_row(202) == b"row-202"

    def test_miss_performs_dummy_access(self):
        store = ObliviousRowStore(capacity=8)
        store.store_row(1, b"x")
        before = store.accesses
        assert store.fetch_row(999) is None
        assert store.accesses == before + 1  # miss still touches the ORAM

    def test_capacity_enforced(self):
        store = ObliviousRowStore(capacity=2)
        store.store_row(1, b"a")
        store.store_row(2, b"b")
        with pytest.raises(CryptoError):
            store.store_row(3, b"c")


class TestTwoServerPIR:
    def _records(self, count=20):
        return [f"record-{index:03d}".encode() for index in range(count)]

    def test_every_record_retrievable(self):
        pir = TwoServerPIR(self._records(20))
        for index in range(20):
            assert pir.retrieve(index).rstrip(b"\x00") == f"record-{index:03d}".encode()

    def test_variable_length_records_padded(self):
        records = [b"a", b"bb", b"ccc", b"dddd"]
        pir = TwoServerPIR(records)
        assert pir.retrieve(2).rstrip(b"\x00") == b"ccc"

    def test_large_records_use_multiple_chunks(self):
        records = [secrets.token_bytes(40) for _ in range(8)]
        pir = TwoServerPIR(records, record_size=40)
        assert pir.retrieve(5) == records[5]

    def test_single_server_view_is_share_only(self):
        """Each server answers from a DPF share; its response alone is not the
        record (information-theoretic hiding of the queried index)."""
        records = self._records(8)
        pir = TwoServerPIR(records)
        dpf_keys = pir._dpf.generate(alpha=3, beta=1)
        response0 = pir.servers[0].answer(dpf_keys[0])
        assert response0[0].to_bytes(8, "big").rstrip(b"\x00") != records[3]

    def test_out_of_range_index_rejected(self):
        pir = TwoServerPIR(self._records(4))
        with pytest.raises(CryptoError):
            pir.retrieve(4)

    def test_empty_database_rejected(self):
        with pytest.raises(CryptoError):
            TwoServerPIR([])

    def test_retrieve_many(self):
        pir = TwoServerPIR(self._records(10))
        results = pir.retrieve_many([0, 9, 5])
        assert [r.rstrip(b"\x00") for r in results] == [
            b"record-000",
            b"record-009",
            b"record-005",
        ]
        assert pir.queries_issued == 3
