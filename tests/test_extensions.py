"""Tests for the full-version extensions: ranges, joins, inserts, multi-attribute."""

import random

import pytest

from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.partition import SensitivityPolicy, partition_relation
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.exceptions import ConfigurationError, QueryError
from repro.extensions.inserts import IncrementalInserter
from repro.extensions.joins import BinnedJoinExecutor
from repro.extensions.multi_attribute import MultiAttributeEngine
from repro.extensions.range_queries import RangeQueryExecutor
from repro.workloads.generator import generate_partitioned_dataset


def numeric_dataset(num_values=24, seed=3):
    """A partitioned relation whose searchable attribute is an integer."""
    schema = Schema([Attribute("k", dtype=int), Attribute("payload")])
    relation = Relation("numbers", schema)
    for value in range(num_values):
        relation.insert(
            {"k": value, "payload": f"p{value}"}, sensitive=(value % 3 == 0)
        )
    partition = partition_relation(relation, SensitivityPolicy())
    return relation, partition


def make_engine(partition, attribute, seed=5):
    return QueryBinningEngine(
        partition=partition,
        attribute=attribute,
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(seed),
    ).setup()


class TestRangeQueries:
    def test_range_returns_all_covered_rows(self):
        relation, partition = numeric_dataset()
        engine = make_engine(partition, "k")
        executor = RangeQueryExecutor(engine)
        rows, trace = executor.query_range(5, 12)
        expected = {r.rid for r in relation if 5 <= r["k"] <= 12}
        assert {r.rid for r in rows} == expected
        assert trace.covered_values == 8
        assert trace.rows_returned == len(expected)

    def test_open_boundaries_clamped_to_domain(self):
        relation, partition = numeric_dataset()
        executor = RangeQueryExecutor(make_engine(partition, "k"))
        rows, _ = executor.query_range(None, 3)
        assert {r["k"] for r in rows} == {0, 1, 2, 3}

    def test_empty_range_returns_nothing(self):
        _, partition = numeric_dataset()
        executor = RangeQueryExecutor(make_engine(partition, "k"))
        rows, trace = executor.query_range(1000, 2000)
        assert rows == [] and trace.covered_values == 0

    def test_requires_set_up_engine(self):
        _, partition = numeric_dataset()
        engine = QueryBinningEngine(
            partition=partition, attribute="k", scheme=NonDeterministicScheme()
        )
        with pytest.raises(ConfigurationError):
            RangeQueryExecutor(engine)

    def test_bin_pairs_bounded_by_layout(self):
        _, partition = numeric_dataset(num_values=30)
        engine = make_engine(partition, "k")
        executor = RangeQueryExecutor(engine)
        _, trace = executor.query_range(0, 29)
        max_pairs = engine.layout.num_sensitive_bins * engine.layout.num_non_sensitive_bins
        assert trace.distinct_bin_pairs <= max_pairs


class TestJoins:
    def _two_partitions(self):
        left_schema = Schema([Attribute("dept"), Attribute("employee")])
        left = Relation("employees", left_schema)
        right_schema = Schema([Attribute("dept"), Attribute("budget")])
        right = Relation("budgets", right_schema)
        for i, dept in enumerate(["sales", "eng", "eng", "hr", "ops"]):
            left.insert({"dept": dept, "employee": f"e{i}"}, sensitive=(dept == "eng"))
        for dept, budget in [("eng", "10"), ("hr", "5"), ("finance", "7")]:
            right.insert({"dept": dept, "budget": budget}, sensitive=(dept == "hr"))
        policy = SensitivityPolicy()
        return partition_relation(left, policy), partition_relation(right, policy)

    def test_join_produces_expected_pairs(self):
        left_partition, right_partition = self._two_partitions()
        left_engine = make_engine(left_partition, "dept", seed=1)
        right_engine = make_engine(right_partition, "dept", seed=2)
        joined, trace = BinnedJoinExecutor(left_engine, right_engine).execute()
        pairs = {(j.left["employee"], j.right["budget"]) for j in joined}
        assert pairs == {("e1", "10"), ("e2", "10"), ("e3", "5")}
        assert trace.output_rows == 3

    def test_join_values_can_be_overridden(self):
        left_partition, right_partition = self._two_partitions()
        left_engine = make_engine(left_partition, "dept", seed=1)
        right_engine = make_engine(right_partition, "dept", seed=2)
        joined, trace = BinnedJoinExecutor(
            left_engine, right_engine, join_values=["eng"]
        ).execute()
        assert trace.join_values_probed == 1
        assert {j.value for j in joined} == {"eng"}

    def test_joined_row_as_dict_prefixes_columns(self):
        left_partition, right_partition = self._two_partitions()
        joined, _ = BinnedJoinExecutor(
            make_engine(left_partition, "dept", 1), make_engine(right_partition, "dept", 2)
        ).execute()
        record = joined[0].as_dict()
        assert any(key.startswith("L.") for key in record)
        assert any(key.startswith("R.") for key in record)

    def test_mismatched_attributes_require_explicit_values(self):
        left_partition, right_partition = self._two_partitions()
        left_engine = make_engine(left_partition, "dept", 1)
        right_engine = make_engine(right_partition, "budget", 2)
        with pytest.raises(ConfigurationError):
            BinnedJoinExecutor(left_engine, right_engine)


class TestInserts:
    def test_insert_existing_value(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        inserter = IncrementalInserter(engine)
        value = small_dataset.all_values[0]
        before = len(engine.query(value))
        inserter.insert({"key": value, "payload": "new"}, sensitive=True)
        assert len(engine.query(value)) == before + 1
        assert inserter.stats.existing_value_inserts == 1

    def test_insert_new_value_becomes_queryable(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        inserter = IncrementalInserter(engine)
        inserter.insert({"key": "brand-new", "payload": "x"}, sensitive=True)
        rows = engine.query("brand-new")
        assert len(rows) == 1
        assert inserter.stats.new_value_in_place + inserter.stats.rebins_triggered >= 1

    def test_insert_new_non_sensitive_value(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        inserter = IncrementalInserter(engine)
        inserter.insert({"key": "public-new", "payload": "y"}, sensitive=False)
        assert len(engine.query("public-new")) == 1

    def test_layout_stays_valid_after_inserts(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        inserter = IncrementalInserter(engine)
        for i in range(6):
            inserter.insert({"key": f"extra{i}", "payload": "z"}, sensitive=(i % 2 == 0))
        engine.layout.validate()
        for i in range(6):
            assert len(engine.query(f"extra{i}")) == 1

    def test_rebin_threshold_triggers_rebuild(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        inserter = IncrementalInserter(engine, rebin_threshold=2)
        for i in range(4):
            inserter.insert({"key": f"n{i}", "payload": "w"}, sensitive=False)
        assert inserter.stats.rebins_triggered >= 1
        for i in range(4):
            assert len(engine.query(f"n{i}")) == 1

    def test_missing_attribute_rejected(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        inserter = IncrementalInserter(engine)
        with pytest.raises(ConfigurationError):
            inserter.insert({"payload": "no key"}, sensitive=True)

    def test_invalid_threshold_rejected(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        with pytest.raises(ConfigurationError):
            IncrementalInserter(engine, rebin_threshold=0)


class TestMultiAttribute:
    def _partition(self):
        schema = Schema([Attribute("city"), Attribute("team"), Attribute("name")])
        relation = Relation("staff", schema)
        rows = [
            ("sf", "db", "ann", True),
            ("sf", "ml", "bob", False),
            ("la", "db", "cat", True),
            ("la", "ml", "dan", False),
            ("ny", "db", "eve", False),
        ]
        for city, team, name, sensitive in rows:
            relation.insert({"city": city, "team": team, "name": name}, sensitive=sensitive)
        return partition_relation(relation, SensitivityPolicy())

    def test_queries_per_attribute(self):
        engine = MultiAttributeEngine(
            self._partition(), ["city", "team"], permutation_seed=4
        ).setup()
        assert {r["name"] for r in engine.query("city", "sf")} == {"ann", "bob"}
        assert {r["name"] for r in engine.query("team", "db")} == {"ann", "cat", "eve"}

    def test_conjunctive_query_intersects(self):
        engine = MultiAttributeEngine(
            self._partition(), ["city", "team"], permutation_seed=4
        ).setup()
        rows = engine.conjunctive_query({"city": "la", "team": "db"})
        assert [r["name"] for r in rows] == ["cat"]

    def test_unknown_attribute_rejected(self):
        engine = MultiAttributeEngine(self._partition(), ["city"], permutation_seed=4).setup()
        with pytest.raises(QueryError):
            engine.query("team", "db")

    def test_setup_validates_attributes(self):
        with pytest.raises(ConfigurationError):
            MultiAttributeEngine(self._partition(), ["nope"]).setup()
        with pytest.raises(ConfigurationError):
            MultiAttributeEngine(self._partition(), [])

    def test_storage_accounting(self):
        engine = MultiAttributeEngine(
            self._partition(), ["city", "team"], permutation_seed=4
        ).setup()
        assert engine.total_metadata_bytes() > 0
        assert engine.total_encrypted_rows() >= 2 * 2  # two copies of 2 sensitive rows

    def test_empty_conjunctive_query_rejected(self):
        engine = MultiAttributeEngine(self._partition(), ["city"], permutation_seed=4).setup()
        with pytest.raises(QueryError):
            engine.conjunctive_query({})


class TestInsertAccounting:
    """Rebin-threshold accounting: every insert counts exactly once, and the
    pending-value counter tracks the live layout, not a stale one."""

    def test_total_counts_forced_rebins(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        # a huge threshold isolates the no-capacity path: the only rebins
        # that fire are forced by placement failure
        inserter = IncrementalInserter(engine, rebin_threshold=10_000)
        issued = 0
        for i in range(60):
            inserter.insert({"key": f"cram{i}", "payload": "p"}, sensitive=True)
            issued += 1
            if inserter.stats.new_value_rebins >= 2:
                break
        assert inserter.stats.new_value_rebins >= 1, "never exhausted capacity"
        assert inserter.stats.total == issued
        assert inserter.stats.rebins_triggered == inserter.stats.new_value_rebins
        # every crammed value is still retrievable after the forced rebins
        for i in range(issued):
            assert len(engine.query(f"cram{i}")) == 1

    def test_external_setup_resets_pending_counter(self, small_dataset):
        engine = make_engine(small_dataset.partition, small_dataset.attribute)
        inserter = IncrementalInserter(engine, rebin_threshold=3)
        # sensitive inserts place in-bin on this dataset (no forced rebins),
        # so the only rebin that could fire here is the threshold one
        inserter.insert({"key": "pend0", "payload": "p"}, sensitive=True)
        inserter.insert({"key": "pend1", "payload": "p"}, sensitive=True)
        assert inserter.stats.new_value_in_place == 2
        # an external redeployment rebuilds the layout outside the inserter
        engine.cloud.reset_observations()
        engine.setup()
        # the rebuilt layout absorbed the pending values: the next two
        # inserts must NOT trip the threshold carried over from before
        inserter.insert({"key": "pend2", "payload": "p"}, sensitive=True)
        inserter.insert({"key": "pend3", "payload": "p"}, sensitive=True)
        assert inserter.stats.rebins_triggered == 0
        # the third post-rebuild insert legitimately reaches the threshold
        inserter.insert({"key": "pend4", "payload": "p"}, sensitive=True)
        assert inserter.stats.rebins_triggered == 1
        for i in range(5):
            assert len(engine.query(f"pend{i}")) == 1

    def test_insert_rebin_insert_across_placements(self, small_dataset):
        """insert → rebin → insert on a sharded engine stays queryable under
        every placement, with identical results."""
        from repro.cloud.multi_cloud import MultiCloud

        fleet = MultiCloud(3)
        engine = QueryBinningEngine(
            partition=small_dataset.partition,
            attribute=small_dataset.attribute,
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
            rng=random.Random(5),
            multi_cloud=fleet,
        ).setup()
        try:
            inserter = IncrementalInserter(engine, rebin_threshold=1000)
            inserter.insert({"key": "pre-rebin", "payload": "a"}, sensitive=True)
            inserter.rebin()  # a full fleet redeployment
            inserter.insert({"key": "post-rebin", "payload": "b"}, sensitive=False)
            workload = ["pre-rebin", "post-rebin", small_dataset.all_values[0]]
            results = {}
            for placement in ("sequential", "batched", "sharded"):
                outcome = engine.execute_workload_with_rows(
                    workload, placement=placement
                )
                results[placement] = [
                    sorted(row.rid for row in rows) for rows, _trace in outcome
                ]
                for rids in results[placement][:2]:
                    assert len(rids) == 1
            assert results["batched"] == results["sequential"]
            assert results["sharded"] == results["sequential"]
        finally:
            fleet.close()
