"""Tests for the group-by aggregation extension."""

import random
from collections import defaultdict

import pytest

from repro.cloud.server import CloudServer
from repro.core.engine import QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.partition import SensitivityPolicy, partition_relation
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.exceptions import ConfigurationError, QueryError
from repro.extensions.aggregation import GroupByAggregator


def sales_relation():
    schema = Schema(
        [Attribute("region"), Attribute("amount", dtype=int), Attribute("order")]
    )
    relation = Relation("sales", schema)
    rng = random.Random(3)
    regions = ["north", "south", "east", "west", "secret-lab"]
    for index in range(60):
        region = regions[index % len(regions)]
        relation.insert(
            {"region": region, "amount": (index % 7) * 10 + 5, "order": f"o{index}"},
            sensitive=(region in {"secret-lab", "north"}),
        )
    return relation


@pytest.fixture
def aggregator():
    relation = sales_relation()
    partition = partition_relation(relation, SensitivityPolicy())
    engine = QueryBinningEngine(
        partition=partition,
        attribute="region",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(7),
    ).setup()
    return relation, GroupByAggregator(engine)


def ground_truth(relation):
    truth = defaultdict(lambda: {"count": 0, "sum": 0, "min": None, "max": None})
    for row in relation:
        entry = truth[row["region"]]
        entry["count"] += 1
        entry["sum"] += row["amount"]
        entry["min"] = row["amount"] if entry["min"] is None else min(entry["min"], row["amount"])
        entry["max"] = row["amount"] if entry["max"] is None else max(entry["max"], row["amount"])
    return truth


class TestGroupByAggregation:
    def test_count_matches_plain_group_by(self, aggregator):
        relation, agg = aggregator
        results, _trace = agg.aggregate(functions=("count",))
        truth = ground_truth(relation)
        assert {r.group: r.count for r in results} == {
            group: entry["count"] for group, entry in truth.items()
        }

    def test_sum_avg_min_max(self, aggregator):
        relation, agg = aggregator
        results, _trace = agg.aggregate(
            measure="amount", functions=("count", "sum", "avg", "min", "max")
        )
        truth = ground_truth(relation)
        for result in results:
            entry = truth[result.group]
            assert result.sum == entry["sum"]
            assert result.avg == pytest.approx(entry["sum"] / entry["count"])
            assert result.min == entry["min"]
            assert result.max == entry["max"]

    def test_bin_pair_caching_limits_round_trips(self, aggregator):
        relation, agg = aggregator
        _results, trace = agg.aggregate(functions=("count",))
        layout = agg.engine.layout
        max_pairs = layout.num_sensitive_bins * layout.num_non_sensitive_bins
        assert trace.cloud_round_trips <= max_pairs
        assert trace.groups == len(relation.distinct_values("region"))

    def test_specific_groups_only(self, aggregator):
        relation, agg = aggregator
        results, _trace = agg.aggregate(
            measure="amount", functions=("count", "sum"), groups=["north", "nowhere"]
        )
        by_group = {r.group: r for r in results}
        truth = ground_truth(relation)
        assert by_group["north"].count == truth["north"]["count"]
        assert by_group["nowhere"].count == 0

    def test_measure_required_for_numeric_aggregates(self, aggregator):
        _relation, agg = aggregator
        with pytest.raises(QueryError):
            agg.aggregate(functions=("sum",))

    def test_unknown_function_rejected(self, aggregator):
        _relation, agg = aggregator
        with pytest.raises(QueryError):
            agg.aggregate(functions=("median",))

    def test_requires_set_up_engine(self):
        relation = sales_relation()
        partition = partition_relation(relation, SensitivityPolicy())
        engine = QueryBinningEngine(
            partition=partition, attribute="region", scheme=NonDeterministicScheme()
        )
        with pytest.raises(ConfigurationError):
            GroupByAggregator(engine)
