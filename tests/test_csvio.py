"""Unit tests for CSV import/export."""

import pytest

from repro.data.csvio import read_csv, round_trip_equal, write_csv
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.exceptions import SchemaError


def typed_schema():
    return Schema(
        [Attribute("name"), Attribute("age", dtype=int), Attribute("score", dtype=float)]
    )


def typed_relation():
    relation = Relation("people", typed_schema())
    relation.insert({"name": "ann", "age": 31, "score": 4.5})
    relation.insert({"name": "bob", "age": 45, "score": 2.0})
    relation.insert({"name": "eve", "age": None, "score": 3.25})
    return relation


class TestCsvRoundTrip:
    def test_round_trip_with_schema(self, tmp_path):
        path = tmp_path / "people.csv"
        original = typed_relation()
        write_csv(original, path)
        loaded = read_csv(path, schema=typed_schema())
        assert round_trip_equal(original, loaded)

    def test_round_trip_preserves_rids(self, tmp_path):
        path = tmp_path / "people.csv"
        original = typed_relation()
        write_csv(original, path, include_rid=True)
        loaded = read_csv(path, schema=typed_schema())
        assert loaded.rids == original.rids

    def test_read_without_schema_infers_strings(self, tmp_path):
        path = tmp_path / "people.csv"
        write_csv(typed_relation(), path)
        loaded = read_csv(path)
        assert loaded.schema.names == ("name", "age", "score")
        assert isinstance(loaded.rows[0]["age"], str)

    def test_numeric_coercion(self, tmp_path):
        path = tmp_path / "people.csv"
        write_csv(typed_relation(), path)
        loaded = read_csv(path, schema=typed_schema())
        ages = sorted(r["age"] for r in loaded if r["age"] is not None)
        assert ages == [31, 45]

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_round_trip_equal_detects_schema_mismatch(self):
        other = Relation("other", Schema([Attribute("x")]))
        assert not round_trip_equal(typed_relation(), other)
