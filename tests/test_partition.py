"""Unit tests for repro.data.partition (row/column sensitivity splitting)."""

import pytest

from repro.data.partition import (
    SensitivityPolicy,
    partition_by_fraction,
    partition_relation,
)
from repro.data.relation import Relation, Row
from repro.data.schema import Attribute, Schema
from repro.exceptions import PartitioningError
from repro.workloads.employee import build_employee_relation, employee_policy


class TestSensitivityPolicy:
    def test_value_based_classification(self):
        policy = SensitivityPolicy(sensitive_values={"dept": {"defense"}})
        row = Row(rid=0, values={"dept": "defense"})
        assert policy.is_sensitive_row(row)
        assert not policy.is_sensitive_row(Row(rid=1, values={"dept": "design"}))

    def test_predicate_based_classification(self):
        policy = SensitivityPolicy(row_predicate=lambda r: r["salary"] > 100)
        assert policy.is_sensitive_row(Row(rid=0, values={"salary": 200}))
        assert not policy.is_sensitive_row(Row(rid=1, values={"salary": 50}))

    def test_row_flag_classification(self):
        policy = SensitivityPolicy()
        assert policy.is_sensitive_row(Row(rid=0, values={}, sensitive=True))
        assert not SensitivityPolicy(use_row_flags=False).is_sensitive_row(
            Row(rid=0, values={}, sensitive=True)
        )


class TestEmployeePartition:
    def test_matches_paper_figure2(self):
        result = partition_relation(build_employee_relation(), employee_policy())
        # Employee2: the four Defense tuples t1, t4, t5, t7 (rids 0, 3, 4, 6).
        assert result.sensitive.rids == (0, 3, 4, 6)
        # Employee3: the four Design tuples t2, t3, t6, t8 (rids 1, 2, 5, 7).
        assert result.non_sensitive.rids == (1, 2, 5, 7)

    def test_vertical_split_contains_ssn(self):
        result = partition_relation(build_employee_relation(), employee_policy())
        assert result.vertical is not None
        assert result.vertical.schema.names == ("EId", "SSN")
        # 6 distinct (EId, SSN) pairs in Figure 2a.
        assert len(result.vertical) == 6

    def test_ssn_removed_from_horizontal_partitions(self):
        result = partition_relation(build_employee_relation(), employee_policy())
        assert "SSN" not in result.sensitive.schema
        assert "SSN" not in result.non_sensitive.schema

    def test_sensitivity_fraction(self):
        result = partition_relation(build_employee_relation(), employee_policy())
        assert result.sensitivity_fraction == pytest.approx(0.5)

    def test_partition_values_accessors(self):
        result = partition_relation(build_employee_relation(), employee_policy())
        assert set(result.sensitive_values("EId")) == {"E101", "E259", "E152", "E159"}
        assert set(result.non_sensitive_values("EId")) == {"E259", "E199", "E254", "E152"}


class TestPartitionValidation:
    def test_vertical_split_requires_key(self):
        policy = SensitivityPolicy(sensitive_attributes=("SSN",))
        with pytest.raises(PartitioningError):
            partition_relation(build_employee_relation(), policy)

    def test_vertical_split_requires_existing_key(self):
        policy = SensitivityPolicy(sensitive_attributes=("SSN",), key_attribute="Nope")
        with pytest.raises(PartitioningError):
            partition_relation(build_employee_relation(), policy)


class TestPartitionByFraction:
    def _relation(self, num_values=10):
        schema = Schema([Attribute("key"), Attribute("payload")])
        relation = Relation("r", schema)
        for i in range(num_values):
            relation.insert({"key": f"k{i}", "payload": str(i)})
        return relation

    def test_fraction_zero_and_one(self):
        relation = self._relation()
        all_ns = partition_by_fraction(relation, "key", 0.0)
        assert len(all_ns.sensitive) == 0 and len(all_ns.non_sensitive) == 10
        all_s = partition_by_fraction(relation, "key", 1.0)
        assert len(all_s.sensitive) == 10 and len(all_s.non_sensitive) == 0

    def test_fraction_partial(self):
        result = partition_by_fraction(self._relation(), "key", 0.3)
        assert len(result.sensitive) == 3
        assert len(result.non_sensitive) == 7

    def test_invalid_fraction_raises(self):
        with pytest.raises(PartitioningError):
            partition_by_fraction(self._relation(), "key", 1.5)

    def test_total_rows_preserved(self):
        relation = self._relation(25)
        result = partition_by_fraction(relation, "key", 0.4)
        assert result.total_rows == 25
