"""Tests for the DB-owner façade and key store."""

import pytest

from repro.crypto.deterministic import DeterministicScheme
from repro.exceptions import ConfigurationError
from repro.owner.db_owner import DBOwner
from repro.owner.keystore import KeyStore
from repro.workloads.employee import build_employee_relation, employee_policy


class TestKeyStore:
    def test_keys_are_deterministic_per_purpose(self):
        store = KeyStore.from_passphrase("secret")
        assert store.key_for("a").material == store.key_for("a").material
        assert store.key_for("a").material != store.key_for("b").material

    def test_scheme_and_permutation_keys_differ(self):
        store = KeyStore.from_passphrase("secret")
        assert store.scheme_key("EId").material != store.permutation_key("EId").material

    def test_same_passphrase_reproduces_keys(self):
        first = KeyStore.from_passphrase("secret").scheme_key("EId")
        second = KeyStore.from_passphrase("secret").scheme_key("EId")
        assert first.material == second.material

    def test_rotate_invalidates_previous_keys(self):
        store = KeyStore.from_passphrase("secret")
        before = store.scheme_key("EId").material
        store.rotate()
        assert store.scheme_key("EId").material != before


class TestDBOwner:
    def _owner(self, **kwargs):
        return DBOwner(
            build_employee_relation(), employee_policy(), permutation_seed=7, **kwargs
        )

    def test_outsource_and_query(self):
        owner = self._owner()
        owner.outsource("EId")
        assert sorted(r["Office"] for r in owner.query("EId", "E259")) == ["2", "6"]
        assert [r["Dept"] for r in owner.query("EId", "E101")] == ["Defense"]
        assert owner.query("EId", "E000") == []

    def test_outsource_is_idempotent(self):
        owner = self._owner()
        first = owner.outsource("EId")
        second = owner.outsource("EId")
        assert first is second

    def test_query_before_outsource_rejected(self):
        with pytest.raises(ConfigurationError):
            self._owner().query("EId", "E259")

    def test_custom_scheme_is_used(self):
        owner = self._owner(scheme_factory=DeterministicScheme)
        engine = owner.outsource("EId")
        assert engine.scheme.name == "deterministic"
        assert len(owner.query("EId", "E259")) == 2

    def test_audit_full_domain_is_secure(self):
        owner = self._owner()
        owner.outsource("EId")
        values = sorted(
            set(owner.partition.sensitive.distinct_values("EId"))
            | set(owner.partition.non_sensitive.distinct_values("EId"))
        )
        owner.execute_workload("EId", values)
        report = owner.audit("EId", full_domain_queried=True)
        assert report.secure, report.violations

    def test_insert_is_classified_by_policy(self):
        owner = self._owner()
        owner.outsource("EId")
        owner.insert(
            {
                "EId": "E300",
                "FirstName": "New",
                "LastName": "Hire",
                "SSN": "777",
                "Office": "9",
                "Dept": "Design",
            }
        )
        # New Design employee is non-sensitive; its value is new, so the base
        # engine cannot serve it until a re-bin, but the partition must hold it.
        assert "E300" in owner.partition.non_sensitive.distinct_values("EId")

    def test_multiple_attributes_use_separate_clouds(self):
        owner = self._owner()
        eid_engine = owner.outsource("EId")
        office_engine = owner.outsource("Office")
        assert eid_engine.cloud is not office_engine.cloud
        assert {r["EId"] for r in owner.query("Office", "2")} == {"E259", "E199", "E159"}

    def test_metadata_size_accounts_all_attributes(self):
        owner = self._owner()
        owner.outsource("EId")
        one = owner.metadata_size_bytes()
        owner.outsource("Office")
        assert owner.metadata_size_bytes() > one

    def test_searchable_attributes_exclude_nothing_by_default(self):
        owner = self._owner()
        assert "EId" in owner.searchable_attributes()

    def test_query_with_trace(self):
        owner = self._owner()
        owner.outsource("EId")
        rows, trace = owner.query_with_trace("EId", "E259")
        assert trace.rows_after_merge == len(rows) == 2
