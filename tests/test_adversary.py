"""Tests for adversarial views, surviving matches, attacks, and the auditor."""

import random

import pytest

from repro.adversary.attacks import (
    frequency_count_attack,
    kpa_association_attack,
    run_all_attacks,
    size_attack,
    workload_skew_attack,
)
from repro.adversary.auditor import PartitionedSecurityAuditor
from repro.adversary.surviving_matches import SurvivingMatchAnalysis
from repro.adversary.view import AdversarialView, ViewLog
from repro.cloud.server import CloudServer
from repro.core.engine import NaivePartitionedEngine, QueryBinningEngine
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.data.relation import Row
from repro.exceptions import SecurityViolation
from repro.workloads.employee import employee_partition
from repro.workloads.generator import generate_partitioned_dataset
from repro.workloads.queries import skewed_workload


def make_view(query_id, requested, sensitive_rids, returned_values=(), s_bin=None, ns_bin=None):
    rows = tuple(
        Row(rid=100 + i, values={"EId": value}) for i, value in enumerate(returned_values)
    )
    return AdversarialView(
        query_id=query_id,
        attribute="EId",
        non_sensitive_request=tuple(requested),
        sensitive_request_size=len(sensitive_rids),
        returned_non_sensitive=rows,
        returned_sensitive_rids=tuple(sensitive_rids),
        sensitive_bin_index=s_bin,
        non_sensitive_bin_index=ns_bin,
    )


class TestViewLog:
    def test_output_sizes_and_frequency(self):
        log = ViewLog()
        log.append(make_view(0, ["a"], [1, 2], ["a"]))
        log.append(make_view(1, ["a"], [1, 2], ["a"]))
        log.append(make_view(2, ["b"], [3], ["b"]))
        assert log.output_sizes() == [3, 3, 2]
        assert max(log.request_frequency().values()) == 2

    def test_distinct_signatures(self):
        log = ViewLog()
        log.append(make_view(0, ["a", "b"], [1, 2]))
        log.append(make_view(1, ["b", "a"], [2, 1]))
        log.append(make_view(2, ["c"], [9]))
        assert len(log.distinct_sensitive_rid_sets()) == 2
        assert len(log.distinct_non_sensitive_request_sets()) == 2

    def test_observed_bin_pairs_requires_annotations(self):
        log = ViewLog()
        log.append(make_view(0, ["a"], [1], s_bin=2, ns_bin=0))
        log.append(make_view(1, ["b"], [2]))
        assert log.observed_bin_pairs() == [(2, 0)]


class TestSurvivingMatches:
    def test_complete_coverage_keeps_all_matches(self):
        log = ViewLog()
        query_id = 0
        for i in range(3):
            for j in range(2):
                log.append(make_view(query_id, [f"ns{j}"], [i], s_bin=i, ns_bin=j))
                query_id += 1
        analysis = SurvivingMatchAnalysis.from_view_log(log, 3, 2)
        assert analysis.is_complete()
        assert analysis.dropped_pairs() == []
        assert analysis.surviving_fraction() == 1.0

    def test_partial_coverage_drops_matches(self):
        """The Figure 4b / Table V situation: SB2 only ever retrieved with
        NSB0 and NSB1 only with SB1 eliminates surviving matches."""
        log = ViewLog()
        log.append(make_view(0, ["ns0"], [20], s_bin=2, ns_bin=0))
        log.append(make_view(1, ["ns1"], [10], s_bin=1, ns_bin=1))
        analysis = SurvivingMatchAnalysis.from_view_log(log, 3, 2)
        assert not analysis.is_complete()
        assert (2, 1) in analysis.dropped_pairs()
        assert analysis.surviving_fraction() < 1.0

    def test_signature_grouping_without_annotations(self):
        log = ViewLog()
        log.append(make_view(0, ["x", "y"], [1, 2]))
        log.append(make_view(1, ["z"], [3, 4]))
        analysis = SurvivingMatchAnalysis.from_view_log(log)
        assert analysis.num_sensitive_bins == 2
        assert analysis.num_non_sensitive_bins == 2

    def test_from_layout_matches_retrieval_rules(self):
        from repro.core.binning import create_bins

        values = [str(i) for i in range(16)]
        layout = create_bins(values, values, rng=random.Random(1))
        analysis = SurvivingMatchAnalysis.from_layout(layout)
        assert analysis.is_complete()

    def test_value_level_ambiguity(self):
        log = ViewLog()
        for i in range(2):
            for j in range(2):
                log.append(make_view(i * 2 + j, ["v"], [i], s_bin=i, ns_bin=j))
        analysis = SurvivingMatchAnalysis.from_view_log(log, 2, 2)
        assert analysis.value_level_ambiguity(values_per_non_sensitive_bin=5) == 10


class TestAttacksOnSyntheticViews:
    def test_size_attack_detects_unequal_outputs(self):
        log = ViewLog()
        log.append(make_view(0, ["a"], [1]))
        log.append(make_view(1, ["b"], [2, 3, 4, 5]))
        assert size_attack(log).succeeded

    def test_size_attack_fails_on_equal_outputs(self):
        log = ViewLog()
        log.append(make_view(0, ["a"], [1, 2]))
        log.append(make_view(1, ["b"], [3, 4]))
        assert not size_attack(log).succeeded

    def test_frequency_attack_on_deterministic_tags(self):
        scheme = DeterministicScheme()
        from repro.data.relation import Relation
        from repro.data.schema import Attribute, Schema

        relation = Relation("r", Schema([Attribute("key")]))
        for key in ["a", "a", "a", "b", "b", "c"]:
            relation.insert({"key": key}, sensitive=True)
        stored = scheme.encrypt_rows(list(relation.rows), "key")
        outcome = frequency_count_attack(stored, relation.value_counts("key"))
        assert outcome.succeeded
        assert outcome.details["recovered_histogram"] == [3, 2, 1]

    def test_frequency_attack_fails_on_probabilistic_tags(self):
        scheme = NonDeterministicScheme()
        from repro.data.relation import Relation
        from repro.data.schema import Attribute, Schema

        relation = Relation("r", Schema([Attribute("key")]))
        for key in ["a", "a", "b"]:
            relation.insert({"key": key}, sensitive=True)
        stored = scheme.encrypt_rows(list(relation.rows), "key")
        assert not frequency_count_attack(stored, relation.value_counts("key")).succeeded

    def test_workload_skew_attack_pins_hot_value_under_naive_requests(self):
        log = ViewLog()
        for i in range(20):
            log.append(make_view(i, ["hot"], [1], ["hot"]))
        for i in range(3):
            log.append(make_view(100 + i, [f"cold{i}"], [2], [f"cold{i}"]))
        outcome = workload_skew_attack(log)
        assert outcome.succeeded
        assert outcome.details["hot_candidate_set_size"] == 1

    def test_workload_skew_attack_fails_when_requests_are_bins(self):
        log = ViewLog()
        for i in range(20):
            log.append(make_view(i, ["hot", "x", "y", "z"], [1, 2], ["hot"]))
        for i in range(3):
            log.append(make_view(100 + i, ["a", "b", "c", "d"], [3, 4], ["a"]))
        outcome = workload_skew_attack(log)
        assert not outcome.succeeded
        assert outcome.details["hot_candidate_set_size"] == 4

    def test_kpa_attack_on_exact_requests(self):
        log = ViewLog()
        log.append(make_view(0, ["E259"], [4], ["E259"]))  # both sides -> pinned
        outcome = kpa_association_attack(log, num_non_sensitive_values=4)
        assert outcome.succeeded
        assert 4 in outcome.details["pinned_encrypted_rids"]

    def test_kpa_attack_detects_sensitive_only_exposure(self):
        log = ViewLog()
        log.append(make_view(0, [], [7]))  # no cleartext half at all
        assert kpa_association_attack(log, 4).succeeded

    def test_kpa_attack_detects_non_sensitive_only_exposure(self):
        log = ViewLog()
        log.append(make_view(0, ["E199"], [], ["E199"]))
        assert kpa_association_attack(log, 4).succeeded

    def test_kpa_attack_fails_on_binned_requests(self):
        log = ViewLog()
        log.append(make_view(0, ["a", "b"], [1, 2], ["a", "b"]))
        assert not kpa_association_attack(log, 4).succeeded

    def test_run_all_attacks_returns_four_outcomes(self):
        log = ViewLog()
        log.append(make_view(0, ["a"], [1], ["a"]))
        outcomes = run_all_attacks(log, [], 4)
        assert [o.name for o in outcomes] == [
            "size",
            "frequency-count",
            "workload-skew",
            "kpa-association",
        ]


class TestEndToEndSecurity:
    def test_naive_execution_violates_partitioned_security(self):
        partition = employee_partition()
        engine = NaivePartitionedEngine(
            partition=partition,
            attribute="EId",
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
        ).setup()
        for value in ("E259", "E101", "E199"):
            engine.query(value)
        auditor = PartitionedSecurityAuditor(num_non_sensitive_values=4)
        report = auditor.audit(engine.cloud.view_log)
        assert not report.secure
        with pytest.raises(SecurityViolation):
            report.raise_on_violation()

    def test_qb_execution_passes_audit_over_full_domain(self):
        partition = employee_partition()
        engine = QueryBinningEngine(
            partition=partition,
            attribute="EId",
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
            rng=random.Random(2),
        ).setup()
        all_values = set(partition.sensitive.distinct_values("EId")) | set(
            partition.non_sensitive.distinct_values("EId")
        )
        for value in sorted(all_values):
            engine.query(value)
        auditor = PartitionedSecurityAuditor(
            num_non_sensitive_values=4,
            layout=engine.layout,
            sensitive_counts=engine.metadata.sensitive_counts,
        )
        report = auditor.audit(engine.cloud.view_log, full_domain_queried=True)
        assert report.secure, report.violations
        report.raise_on_violation()

    def test_qb_defeats_attacks_on_skewed_data_and_workload(self):
        dataset = generate_partitioned_dataset(
            num_values=36,
            sensitivity_fraction=0.5,
            association_fraction=0.5,
            tuples_per_value=4,
            skew_exponent=1.2,
            seed=5,
        )
        engine = QueryBinningEngine(
            partition=dataset.partition,
            attribute=dataset.attribute,
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
            rng=random.Random(8),
        ).setup()
        workload = skewed_workload(dataset.all_values, num_queries=150, seed=3)
        engine.execute_workload(workload)
        log = engine.cloud.view_log
        assert not size_attack(log).succeeded
        assert not workload_skew_attack(log).succeeded
        assert not kpa_association_attack(log, len(dataset.non_sensitive_counts)).succeeded

    def test_naive_execution_leaks_under_skewed_workload(self):
        dataset = generate_partitioned_dataset(
            num_values=36,
            sensitivity_fraction=0.5,
            association_fraction=0.5,
            tuples_per_value=4,
            skew_exponent=1.2,
            seed=5,
        )
        engine = NaivePartitionedEngine(
            partition=dataset.partition,
            attribute=dataset.attribute,
            scheme=NonDeterministicScheme(),
            cloud=CloudServer(),
        ).setup()
        workload = skewed_workload(dataset.all_values, num_queries=150, seed=3)
        engine.execute_workload(workload)
        log = engine.cloud.view_log
        assert size_attack(log).succeeded
        assert workload_skew_attack(log).succeeded
