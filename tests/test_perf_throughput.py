"""Fast perf smoke for the indexed query pipeline (``pytest -m perf -q``).

Runs the throughput benchmark machinery at reduced scale so the tier-1 suite
exercises every cloud search path end-to-end.  Assertions here are restricted
to the *hardware-independent* contraction (rows examined per query) so the
suite stays deterministic on loaded machines; the wall-clock acceptance
numbers (≥5x queries/sec at 100k rows) are recorded in the committed
``BENCH_throughput.json`` trajectory and asserted by the explicitly-invoked
(bench files are not auto-collected) full-scale test::

    PYTHONPATH=src python -m pytest -m perf -q \
        benchmarks/bench_perf_query_throughput.py
"""

import pytest

from benchmarks.bench_perf_query_throughput import print_results, run_throughput_suite


@pytest.mark.perf
def test_perf_smoke_indexed_query_throughput():
    results = run_throughput_suite(
        sizes=(10_000,),
        query_budget={
            "linear-scan": 20,
            "tag-index": 150,
            "tag-index+batch": 150,
            "sse-linear-scan": 3,
            "sse-bin-store": 20,
        },
        out_path=None,
    )
    print_results(results)
    measured = results["sizes"][0]["results"]

    # Every configuration answered its whole workload.
    for name, config in measured.items():
        assert config["queries"] > 0, name
        assert config["elapsed_seconds"] > 0, name

    # The rows-scanned contraction is deterministic: linear scans examine the
    # whole encrypted relation per query, the indexed paths one bin's worth.
    linear_rows = measured["linear-scan"]["rows_scanned_per_query"]
    stored = measured["linear-scan"]["encrypted_rows_stored"]
    assert linear_rows == stored
    assert measured["sse-linear-scan"]["rows_scanned_per_query"] == stored
    assert measured["tag-index"]["rows_scanned_per_query"] < linear_rows / 5
    assert measured["tag-index+batch"]["rows_scanned_per_query"] < linear_rows / 5
    assert measured["sse-bin-store"]["rows_scanned_per_query"] < linear_rows / 5


@pytest.mark.perf
@pytest.mark.multicloud
def test_perf_smoke_sharded_fleet_contracts_per_server_work():
    """Reduced-scale smoke for the multi-cloud scaling benchmark.

    The wall-clock qps curve lives in ``BENCH_throughput.json`` (written by
    ``benchmarks/bench_perf_multicloud.py``); here we assert its
    hardware-independent driver: sharding a linear-scan relation across a
    fleet splits storage bin-by-bin, so the rows any member examines per
    query shrink with the member count while results stay identical to the
    single-server batch path.
    """
    from benchmarks.bench_perf_multicloud import run_fleet_comparison

    comparison = run_fleet_comparison(size=4_000, server_counts=(1, 4), queries=12)
    single, sharded = comparison["runs"]["1"], comparison["runs"]["4"]

    assert single["queries"] == sharded["queries"] > 0
    # identical per-query result sizes: sharding is unobservable to the owner
    assert comparison["result_rids_match"] is True
    # the single server examined the full relation per sensitive request...
    assert single["rows_scanned_per_query"] == single["encrypted_rows_stored"]
    # ...while no fleet member even *stores* half of it, and the per-query
    # scan contracts accordingly.
    assert sharded["max_rows_stored_per_server"] < single["encrypted_rows_stored"] / 2
    assert sharded["rows_scanned_per_query"] < single["rows_scanned_per_query"] / 2
