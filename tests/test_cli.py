"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_attacks, run_demo, run_eta, run_table6


class TestSubcommandFunctions:
    def test_demo_is_secure(self, capsys):
        assert run_demo(seed=3) == 0
        output = capsys.readouterr().out
        assert "partitioned data security: OK" in output

    def test_attacks_qb_resists(self, capsys):
        assert run_attacks(num_values=30, num_queries=60, seed=5) == 0
        output = capsys.readouterr().out
        assert "with QB" in output

    def test_eta_below_one_for_strong_crypto(self, capsys):
        assert run_eta(alpha=0.4, gamma=25_000) == 0
        assert "eta = " in capsys.readouterr().out

    def test_eta_above_one_for_cheap_crypto(self):
        assert run_eta(alpha=0.9, gamma=2, quiet=True) == 1

    def test_table6_prints_both_rows(self, capsys):
        assert run_table6() == 0
        output = capsys.readouterr().out
        assert "Opaque + QB" in output and "Jana + QB" in output


class TestArgumentParsing:
    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_main_dispatches_demo(self, capsys):
        assert main(["demo", "--seed", "4"]) == 0
        assert "Bin layout" in capsys.readouterr().out

    def test_main_dispatches_eta(self):
        assert main(["--quiet", "eta", "--alpha", "0.3"]) == 0

    def test_main_dispatches_table6_quiet(self, capsys):
        assert main(["--quiet", "table6"]) == 0
        assert capsys.readouterr().out == ""

    def test_eta_requires_alpha(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eta"])
