"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cloud.server import CloudServer
from repro.core.engine import NaivePartitionedEngine, QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.primitives import SecretKey
from repro.data.partition import partition_relation
from repro.workloads.employee import (
    build_employee_relation,
    employee_partition,
    employee_policy,
)
from repro.workloads.generator import generate_partitioned_dataset


@pytest.fixture
def employee_relation():
    """The paper's 8-tuple Employee relation (Figure 1)."""
    return build_employee_relation()


@pytest.fixture
def employee_split():
    """The Employee partition of Figure 2 (Employee1/2/3)."""
    return employee_partition()


@pytest.fixture
def fixed_key():
    """A deterministic secret key for reproducible crypto tests."""
    return SecretKey.from_passphrase("test-suite-key")


@pytest.fixture
def small_dataset():
    """A small synthetic base-case dataset (uniform counts, 1 tuple/value)."""
    return generate_partitioned_dataset(
        num_values=30,
        sensitivity_fraction=0.4,
        association_fraction=0.5,
        tuples_per_value=1,
        seed=21,
    )


@pytest.fixture
def skewed_dataset():
    """A synthetic general-case dataset with Zipf-skewed multiplicities."""
    return generate_partitioned_dataset(
        num_values=40,
        sensitivity_fraction=0.5,
        association_fraction=0.6,
        tuples_per_value=5,
        skew_exponent=1.1,
        seed=33,
    )


@pytest.fixture
def qb_engine(small_dataset):
    """A ready-to-query QB engine over the small base-case dataset."""
    engine = QueryBinningEngine(
        partition=small_dataset.partition,
        attribute=small_dataset.attribute,
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(5),
    )
    return engine.setup()


@pytest.fixture
def naive_engine(employee_split):
    """The leaky (non-binned) partitioned engine over the Employee example."""
    engine = NaivePartitionedEngine(
        partition=employee_split,
        attribute="EId",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
    )
    return engine.setup()


@pytest.fixture
def qb_employee_engine(employee_split):
    """A QB engine over the Employee example with a fixed permutation."""
    engine = QueryBinningEngine(
        partition=employee_split,
        attribute="EId",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(11),
    )
    return engine.setup()
