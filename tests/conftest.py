"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import pytest

from repro.adversary.view import AdversarialView
from repro.cloud.multi_cloud import MultiCloud
from repro.cloud.server import BatchRequest, CloudServer, QueryResponse
from repro.exceptions import MemberFailure
from repro.core.engine import ExecutionTrace, NaivePartitionedEngine, QueryBinningEngine
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.primitives import SecretKey
from repro.data.partition import partition_relation
from repro.workloads.employee import (
    build_employee_relation,
    employee_partition,
    employee_policy,
)
from repro.workloads.generator import generate_partitioned_dataset


@pytest.fixture
def employee_relation():
    """The paper's 8-tuple Employee relation (Figure 1)."""
    return build_employee_relation()


@pytest.fixture
def employee_split():
    """The Employee partition of Figure 2 (Employee1/2/3)."""
    return employee_partition()


@pytest.fixture
def fixed_key():
    """A deterministic secret key for reproducible crypto tests."""
    return SecretKey.from_passphrase("test-suite-key")


@pytest.fixture
def small_dataset():
    """A small synthetic base-case dataset (uniform counts, 1 tuple/value)."""
    return generate_partitioned_dataset(
        num_values=30,
        sensitivity_fraction=0.4,
        association_fraction=0.5,
        tuples_per_value=1,
        seed=21,
    )


@pytest.fixture
def skewed_dataset():
    """A synthetic general-case dataset with Zipf-skewed multiplicities."""
    return generate_partitioned_dataset(
        num_values=40,
        sensitivity_fraction=0.5,
        association_fraction=0.6,
        tuples_per_value=5,
        skew_exponent=1.1,
        seed=33,
    )


@pytest.fixture
def qb_engine(small_dataset):
    """A ready-to-query QB engine over the small base-case dataset."""
    engine = QueryBinningEngine(
        partition=small_dataset.partition,
        attribute=small_dataset.attribute,
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(5),
    )
    return engine.setup()


@pytest.fixture
def naive_engine(employee_split):
    """The leaky (non-binned) partitioned engine over the Employee example."""
    engine = NaivePartitionedEngine(
        partition=employee_split,
        attribute="EId",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
    )
    return engine.setup()


@pytest.fixture
def qb_employee_engine(employee_split):
    """A QB engine over the Employee example with a fixed permutation."""
    engine = QueryBinningEngine(
        partition=employee_split,
        attribute="EId",
        scheme=NonDeterministicScheme(),
        cloud=CloudServer(),
        rng=random.Random(11),
    )
    return engine.setup()


# -- cross-strategy execution parity harness -----------------------------------
#
# The repo's core security claim is that every execution strategy — one
# request at a time, batched on one server, or sharded across a fleet —
# produces bit-identical results and adversarial observables.  The harness
# below is the reusable machinery for asserting that: any future execution
# strategy gets parity coverage by adding one ``run()`` call, not a new test
# file.


@dataclass
class StrategyRun:
    """Everything one execution strategy produced for one workload."""

    placement: str
    engine: QueryBinningEngine
    #: sorted result rids, one list per workload query
    result_rids: List[List[int]]
    traces: List[ExecutionTrace]

    @property
    def cloud(self) -> CloudServer:
        return self.engine.cloud

    @property
    def fleet(self) -> Optional[MultiCloud]:
        return self.engine.multi_cloud


class ExecutionParityHarness:
    """Runs one workload under several placements and compares observables.

    Engines are built over the *same* dataset with the *same* permutation
    seed and key, so their bin layouts are identical and any divergence in
    results, views, or statistics is attributable to the execution strategy
    under test.
    """

    PLACEMENTS: Tuple[str, ...] = ("sequential", "batched", "sharded")

    def __init__(
        self,
        dataset,
        scheme_factory: Callable[..., object],
        num_shards: int = 3,
        shard_policy: str = "hash",
        use_encrypted_indexes: bool = True,
        permutation_seed: int = 17,
        key_phrase: str = "parity-key",
        replication_factor: int = 1,
        server_factory: Optional[Callable[..., CloudServer]] = None,
        member_backend: str = "thread",
        member_retries: int = 1,
        rpc_timeout: Optional[float] = None,
        storage_backend: str = "memory",
    ):
        self.dataset = dataset
        self.scheme_factory = scheme_factory
        self.num_shards = num_shards
        self.shard_policy = shard_policy
        self.use_encrypted_indexes = use_encrypted_indexes
        self.permutation_seed = permutation_seed
        self.key_phrase = key_phrase
        self.replication_factor = replication_factor
        self.server_factory = server_factory
        self.member_backend = member_backend
        self.member_retries = member_retries
        self.rpc_timeout = rpc_timeout
        self.storage_backend = storage_backend
        self._fleets: List[MultiCloud] = []
        self._servers: List[CloudServer] = []

    # -- construction --------------------------------------------------------
    def make_engine(self, sharded: bool = False) -> QueryBinningEngine:
        reference = CloudServer(
            use_encrypted_indexes=self.use_encrypted_indexes,
            storage_backend=self.storage_backend,
        )
        self._servers.append(reference)
        engine = QueryBinningEngine(
            partition=self.dataset.partition,
            attribute=self.dataset.attribute,
            scheme=self.scheme_factory(SecretKey.from_passphrase(self.key_phrase)),
            cloud=reference,
            rng=random.Random(self.permutation_seed),
            multi_cloud=(
                MultiCloud(
                    self.num_shards,
                    use_encrypted_indexes=self.use_encrypted_indexes,
                    server_factory=self.server_factory,
                    member_backend=self.member_backend,
                    member_retries=self.member_retries,
                    rpc_timeout=self.rpc_timeout,
                    storage_backend=self.storage_backend,
                )
                if sharded
                else None
            ),
            shard_policy=self.shard_policy,
            replication_factor=self.replication_factor,
        )
        if engine.multi_cloud is not None:
            self._fleets.append(engine.multi_cloud)
        return engine.setup()

    def close(self) -> None:
        """Reap worker processes and storage of everything this harness built.

        Proxy mirrors stay readable after close, so assertions may still
        inspect a closed run's views and statistics.
        """
        for fleet in self._fleets:
            fleet.close()
        for server in self._servers:
            server.close()

    def workload(self, repeats: int = 2, seed: int = 41) -> List[object]:
        values = list(self.dataset.all_values) * repeats
        random.Random(seed).shuffle(values)
        return values

    # -- execution -----------------------------------------------------------
    def run(self, placement: str, workload: Sequence[object]) -> StrategyRun:
        engine = self.make_engine(sharded=(placement == "sharded"))
        outcome = engine.execute_workload_with_rows(workload, placement=placement)
        return StrategyRun(
            placement=placement,
            engine=engine,
            result_rids=[sorted(row.rid for row in rows) for rows, _trace in outcome],
            traces=[trace for _rows, trace in outcome],
        )

    def run_all(
        self, workload: Optional[Sequence[object]] = None
    ) -> Dict[str, StrategyRun]:
        workload = list(workload) if workload is not None else self.workload()
        return {placement: self.run(placement, workload) for placement in self.PLACEMENTS}

    def run_concurrent(
        self, placement: str, workload: Sequence[object], num_clients: int = 4
    ) -> StrategyRun:
        """Replay ``workload`` from ``num_clients`` threads over ONE engine.

        Client ``i`` executes the round-robin slice ``workload[i::n]``; the
        per-query outcomes are reassembled into original workload order, so
        the returned :class:`StrategyRun` is directly comparable to a
        single-threaded :meth:`run` of the same placement.  All clients
        share one engine (and its cloud/fleet) — exactly the service
        layer's shape, where concurrent sessions hit one tenant — so this
        is the regression surface for the engine/server/fleet locking: any
        unsynchronized cache mutation shows up as divergent results, views,
        or statistics.
        """
        engine = self.make_engine(sharded=(placement == "sharded"))
        workload = list(workload)
        slices = [workload[i::num_clients] for i in range(num_clients)]
        outcomes: List[Optional[List[Tuple[List, ExecutionTrace]]]] = (
            [None] * num_clients
        )
        errors: List[BaseException] = []
        barrier = threading.Barrier(num_clients)

        def client(index: int) -> None:
            try:
                barrier.wait()  # maximize interleaving pressure
                outcomes[index] = engine.execute_workload_with_rows(
                    slices[index], placement=placement
                )
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(index,), daemon=True)
            for index in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        merged: List[Optional[Tuple[List, ExecutionTrace]]] = [None] * len(workload)
        for index, outcome in enumerate(outcomes):
            assert outcome is not None
            for position, pair in enumerate(outcome):
                merged[index + position * num_clients] = pair
        assert all(pair is not None for pair in merged)
        return StrategyRun(
            placement=placement,
            engine=engine,
            result_rids=[sorted(row.rid for row in rows) for rows, _trace in merged],
            traces=[trace for _rows, trace in merged],
        )

    # -- per-query view reconstruction ---------------------------------------
    def sharded_view_pairs(
        self, run: StrategyRun, workload: Sequence[object]
    ) -> List[Tuple[Optional[AdversarialView], Optional[AdversarialView]]]:
        """(sensitive-half view, cleartext-half view) per retrieving query.

        Rebuilds the request stream (a pure owner-side computation) and
        replays the router's placement plan to look each half's view up in
        the per-server logs — the same mapping the merge step uses for
        responses, applied to views.
        """
        assert run.fleet is not None and run.engine.shard_router is not None
        requests, _slots = run.engine.build_requests(list(workload))
        _batches, placements = run.fleet.split_requests(
            requests, run.engine.shard_router
        )
        pairs = []
        for sensitive_placement, non_sensitive_placement in placements:
            sensitive_view = None
            if sensitive_placement is not None:
                server_index, position = sensitive_placement
                sensitive_view = run.fleet[server_index].view_log.views[position]
            non_sensitive_view = None
            if non_sensitive_placement is not None:
                server_index, position = non_sensitive_placement
                non_sensitive_view = run.fleet[server_index].view_log.views[position]
            pairs.append((sensitive_view, non_sensitive_view))
        return pairs

    # -- view content --------------------------------------------------------
    @staticmethod
    def _view_content(view: AdversarialView) -> Tuple:
        """A view's observable content, minus the per-server query id."""
        return (
            view.attribute,
            view.non_sensitive_request,
            view.sensitive_request_size,
            tuple(row.rid for row in view.returned_non_sensitive),
            view.returned_sensitive_rids,
            view.sensitive_bin_index,
            view.non_sensitive_bin_index,
        )

    def view_content_multisets(self, run: StrategyRun) -> List[Dict[Tuple, int]]:
        """Per-server multisets of view content, interleaving-independent.

        One dict per server (the reference server alone, or each fleet
        member), mapping view content to its occurrence count.  Concurrent
        clients record the same views in a different *order*; the multiset
        is the strongest observable that is invariant under reordering.
        """
        if run.fleet is not None:
            servers = [run.fleet[index] for index in range(len(run.fleet))]
        else:
            servers = [run.cloud]
        multisets: List[Dict[Tuple, int]] = []
        for server in servers:
            counts: Dict[Tuple, int] = {}
            for view in server.view_log:
                content = self._view_content(view)
                counts[content] = counts.get(content, 0) + 1
            multisets.append(counts)
        return multisets

    # -- assertions ----------------------------------------------------------
    def assert_concurrent_parity(
        self, reference: StrategyRun, concurrent: StrategyRun
    ) -> None:
        """Concurrent replay is observationally identical to single-threaded.

        Results are compared per original workload position (exact, not
        just as a multiset — reassembly restores order); traces match
        field-for-field; per-server adversarial views match as multisets
        (order is the one thing interleaving may legitimately permute); and
        statistics aggregate to the same totals.
        """
        assert concurrent.result_rids == reference.result_rids
        assert len(concurrent.traces) == len(reference.traces)
        for ours, theirs in zip(concurrent.traces, reference.traces):
            assert ours.query == theirs.query
            assert ours.binned == theirs.binned
            assert ours.sensitive_values_requested == theirs.sensitive_values_requested
            assert (
                ours.non_sensitive_values_requested
                == theirs.non_sensitive_values_requested
            )
            assert ours.encrypted_rows_returned == theirs.encrypted_rows_returned
            assert (
                ours.non_sensitive_rows_returned == theirs.non_sensitive_rows_returned
            )
            assert ours.rows_after_merge == theirs.rows_after_merge
            assert ours.transfer_seconds == pytest.approx(theirs.transfer_seconds)
        assert self.view_content_multisets(concurrent) == self.view_content_multisets(
            reference
        )
        if reference.fleet is not None and concurrent.fleet is not None:
            for field_name in (
                "queries_served",
                "sensitive_tokens_processed",
                "sensitive_rows_returned",
                "non_sensitive_rows_returned",
                "non_sensitive_probes",
            ):
                assert concurrent.fleet.aggregate_stat(field_name) == (
                    reference.fleet.aggregate_stat(field_name)
                ), field_name
            assert concurrent.fleet.total_transfer_tuples("download") == (
                reference.fleet.total_transfer_tuples("download")
            )
        else:
            assert concurrent.cloud.stats == reference.cloud.stats
            assert concurrent.cloud.network.total_tuples("download") == (
                reference.cloud.network.total_tuples("download")
            )

    def assert_identical_results(self, runs: Dict[str, StrategyRun]) -> None:
        reference = runs["sequential"]
        for placement, run in runs.items():
            assert run.result_rids == reference.result_rids, (
                f"{placement} returned different rows than sequential"
            )

    def assert_identical_traces(self, runs: Dict[str, StrategyRun]) -> None:
        """Traces match field-for-field; sharded transfer adds exactly the
        second server's round-trip latency (tuple counts stay identical)."""
        reference = runs["sequential"]
        for placement, run in runs.items():
            assert len(run.traces) == len(reference.traces)
            for ours, theirs in zip(run.traces, reference.traces):
                assert ours.query == theirs.query
                assert ours.binned == theirs.binned
                assert ours.sensitive_values_requested == theirs.sensitive_values_requested
                assert (
                    ours.non_sensitive_values_requested
                    == theirs.non_sensitive_values_requested
                )
                assert ours.encrypted_rows_returned == theirs.encrypted_rows_returned
                assert (
                    ours.non_sensitive_rows_returned == theirs.non_sensitive_rows_returned
                )
                assert ours.rows_after_merge == theirs.rows_after_merge
                if placement == "sharded" and ours.binned is not None:
                    latency = run.cloud.network.latency_seconds
                    assert ours.transfer_seconds == pytest.approx(
                        theirs.transfer_seconds + latency
                    )
                else:
                    assert ours.transfer_seconds == pytest.approx(theirs.transfer_seconds)

    def assert_single_server_parity(
        self, sequential: StrategyRun, batched: StrategyRun
    ) -> None:
        """Batched single-server execution is observationally identical."""
        assert sequential.cloud.stats == batched.cloud.stats
        assert len(sequential.cloud.view_log) == len(batched.cloud.view_log)
        for ours, theirs in zip(sequential.cloud.view_log, batched.cloud.view_log):
            assert ours.query_id == theirs.query_id
            assert ours.non_sensitive_request == theirs.non_sensitive_request
            assert ours.sensitive_request_size == theirs.sensitive_request_size
            assert ours.returned_sensitive_rids == theirs.returned_sensitive_rids
            assert ours.sensitive_bin_index == theirs.sensitive_bin_index
            assert ours.non_sensitive_bin_index == theirs.non_sensitive_bin_index

    def assert_sharded_view_parity(
        self,
        sequential: StrategyRun,
        sharded: StrategyRun,
        workload: Sequence[object],
    ) -> None:
        """Fleet views carry the same information, split across members.

        For every query the sensitive-half view matches the sequential view's
        encrypted observables and the cleartext-half view matches its
        cleartext observables — and each half provably lacks the *other*
        half, which is the non-collusion guarantee.
        """
        sequential_views = [
            view for view in sequential.cloud.view_log
        ]
        pairs = self.sharded_view_pairs(sharded, workload)
        assert len(pairs) == len(sequential_views)
        for reference, (sensitive_view, cleartext_view) in zip(sequential_views, pairs):
            assert sensitive_view is not None and cleartext_view is not None
            # the sensitive member sees the tokens and returned addresses...
            assert sensitive_view.sensitive_request_size == reference.sensitive_request_size
            assert sensitive_view.returned_sensitive_rids == reference.returned_sensitive_rids
            assert sensitive_view.sensitive_bin_index == reference.sensitive_bin_index
            # ...but no cleartext half, and no non-sensitive bin to pair with.
            assert sensitive_view.non_sensitive_request == ()
            assert sensitive_view.returned_non_sensitive == ()
            assert sensitive_view.non_sensitive_bin_index is None
            # the cleartext member sees the public half...
            assert cleartext_view.non_sensitive_request == reference.non_sensitive_request
            assert [r.rid for r in cleartext_view.returned_non_sensitive] == [
                r.rid for r in reference.returned_non_sensitive
            ]
            assert cleartext_view.non_sensitive_bin_index == reference.non_sensitive_bin_index
            # ...and not a single token.
            assert cleartext_view.sensitive_request_size == 0
            assert cleartext_view.returned_sensitive_rids == ()
            assert cleartext_view.sensitive_bin_index is None

    def assert_sharded_statistics_parity(
        self, sequential: StrategyRun, sharded: StrategyRun
    ) -> None:
        """Fleet-aggregated statistics equal the single reference server's."""
        fleet = sharded.fleet
        assert fleet is not None
        reference = sequential.cloud.stats
        for field_name in (
            "sensitive_tokens_processed",
            "sensitive_rows_returned",
            "non_sensitive_rows_returned",
            "non_sensitive_probes",
        ):
            assert fleet.aggregate_stat(field_name) == getattr(reference, field_name), (
                field_name
            )
        if self.use_encrypted_indexes:
            # Indexed paths examine exactly one bin's rows wherever the bin
            # lives, so even the scanned-row counters match; the linear-scan
            # fallback legitimately scans less on a sharded fleet.
            assert (
                fleet.aggregate_stat("sensitive_rows_scanned")
                == reference.sensitive_rows_scanned
            )
        # every retrieving query was served as exactly two half requests
        retrieving = sum(1 for trace in sequential.traces if trace.binned is not None)
        assert fleet.aggregate_stat("queries_served") == 2 * retrieving
        # the fleet shipped exactly the tuples the single server shipped
        assert fleet.total_transfer_tuples("download") == (
            sequential.cloud.network.total_tuples("download")
        )


# -- fault-injection harness ----------------------------------------------------
#
# The fault-tolerance claim mirrors the parity claim: killing any single
# fleet member at any point of a sharded batch must be unobservable — the
# degraded run returns the same rows, records the same per-query adversarial
# information (on different members), and aggregates to the same statistics
# as the healthy run.  ``FaultInjectingCloudServer`` is the chaos agent;
# ``FaultInjectionHarness`` runs healthy/degraded pairs and asserts the
# equivalence, for any scheme, member, and failure point.


class FaultInjectingCloudServer(CloudServer):
    """A :class:`CloudServer` that can crash on command.

    ``schedule_failure`` arms the member: its next ``process_batch`` call
    serves the first ``at_offset`` requests, then crashes — it rolls its
    observations back to the batch-start snapshot (a crashed process loses
    the volatile state of in-flight work) and raises
    :class:`~repro.exceptions.MemberFailure`.  ``failures`` controls how
    many calls fail (transient faults recover afterwards); ``permanent``
    marks the member dead so every later call fails immediately, modelling
    a machine that stays down.

    ``schedule_stall`` injects *latency* faults instead: the next batches
    sleep before serving — finite delays model slow-but-progressing members
    (which must NOT be failed over: they eventually answer correctly);
    ``forever=True`` models a wedged member that never answers.  A wedge is
    only usable behind a process-backed proxy, whose RPC deadline abandons
    the worker — a thread-backed member cannot be interrupted, so wedging it
    would hang the coordinator (exactly the failure mode RPC deadlines
    exist to prevent).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._fail_at_offset: Optional[int] = None
        self._failures_remaining = 0
        self._fail_permanently = True
        self._stall_seconds = 0.0
        self._stalls_remaining = 0
        self._stall_forever = False
        self.dead = False
        self.failures_injected = 0
        self.stalls_injected = 0

    def schedule_failure(
        self, at_offset: int = 0, failures: int = 1, permanent: bool = True
    ) -> None:
        """Arm the member to crash ``at_offset`` requests into its batches."""
        self._fail_at_offset = at_offset
        self._failures_remaining = failures
        self._fail_permanently = permanent

    def schedule_stall(
        self, seconds: float = 0.05, stalls: int = 1, forever: bool = False
    ) -> None:
        """Arm the member to sleep before serving its next ``stalls`` batches.

        ``forever=True`` wedges the member instead (process backend only —
        see the class docstring); ``seconds`` is ignored in that case.
        """
        self._stall_seconds = seconds
        self._stalls_remaining = stalls
        self._stall_forever = forever

    def process_batch(self, requests: Sequence[BatchRequest]) -> List[QueryResponse]:
        if self._stalls_remaining > 0:
            self._stalls_remaining -= 1
            self.stalls_injected += 1
            if self._stall_forever:
                while True:  # wedged: the proxy's RPC deadline reaps us
                    time.sleep(3600.0)
            time.sleep(self._stall_seconds)
        if self.dead:
            self.failures_injected += 1
            raise MemberFailure(f"{self.name} is down")
        if self._failures_remaining <= 0 or self._fail_at_offset is None:
            return super().process_batch(requests)
        snapshot = self.observation_snapshot()
        crash_offset = min(self._fail_at_offset, len(requests))
        if crash_offset:
            # The member really does the prefix's work (views recorded,
            # counters bumped) before dying — the restore below is what
            # guarantees the lost attempt never double-counts.
            super().process_batch(list(requests[:crash_offset]))
        self.restore_observations(snapshot)
        self._failures_remaining -= 1
        self.failures_injected += 1
        if self._fail_permanently:
            self.dead = True
        raise MemberFailure(
            f"{self.name} crashed after {crash_offset} of {len(requests)} requests"
        )


class FaultInjectionHarness(ExecutionParityHarness):
    """Kills chosen fleet members at chosen batch offsets and proves parity.

    Extends :class:`ExecutionParityHarness`: the healthy reference comes from
    ``run("sharded", workload)`` exactly as in the parity suite (the fault
    servers are benign until armed), ``run_with_failure`` replays the same
    workload on a fresh fleet with one member scheduled to crash, and
    ``assert_degraded_parity`` pins results, traces, per-query view content,
    and fleet-aggregated statistics of the degraded run to the healthy run.
    Defaults to a 4-member fleet with 2-way replication — the smallest shape
    where any single member can die and every bin keeps a live replica.
    """

    def __init__(
        self,
        dataset,
        scheme_factory: Callable[..., object],
        num_shards: int = 4,
        replication_factor: int = 2,
        **kwargs,
    ):
        super().__init__(
            dataset,
            scheme_factory,
            num_shards=num_shards,
            replication_factor=replication_factor,
            server_factory=FaultInjectingCloudServer,
            **kwargs,
        )

    # -- failure-point selection ---------------------------------------------
    def member_loads(self, run: StrategyRun, workload: Sequence[object]) -> List[int]:
        """How many half requests each member serves on a healthy run."""
        assert run.fleet is not None and run.engine.shard_router is not None
        requests, _slots = run.engine.build_requests(list(workload))
        per_server, _placements = run.fleet.split_requests(
            requests, run.engine.shard_router
        )
        return [len(batch) for batch in per_server]

    def busiest_member(
        self, run: StrategyRun, workload: Sequence[object]
    ) -> Tuple[int, int]:
        """(member index, its half-request load) — a victim with in-flight work."""
        loads = self.member_loads(run, workload)
        victim = max(range(len(loads)), key=loads.__getitem__)
        return victim, loads[victim]

    # -- degraded execution ---------------------------------------------------
    def run_with_failure(
        self,
        workload: Sequence[object],
        victim: int,
        at_offset: int,
        failures: int = 1,
        permanent: bool = True,
    ) -> StrategyRun:
        """The sharded run with ``victim`` crashing ``at_offset`` into its batch."""
        engine = self.make_engine(sharded=True)
        assert engine.multi_cloud is not None
        engine.multi_cloud[victim].schedule_failure(
            at_offset=at_offset, failures=failures, permanent=permanent
        )
        outcome = engine.execute_workload_with_rows(
            list(workload), placement="sharded"
        )
        return StrategyRun(
            placement="sharded",
            engine=engine,
            result_rids=[sorted(row.rid for row in rows) for rows, _trace in outcome],
            traces=[trace for _rows, trace in outcome],
        )

    # -- view reconstruction ---------------------------------------------------
    # (``_view_content`` is inherited from :class:`ExecutionParityHarness`.)

    def half_view_contents(
        self, run: StrategyRun
    ) -> List[Tuple[Optional[Tuple], Optional[Tuple]]]:
        """(sensitive half, cleartext half) view content per request, as served.

        Uses the fleet's :class:`FleetBatchReport` — the *actual* post-failover
        placements — rather than replaying the healthy routing plan, so it is
        meaningful for degraded runs.
        """
        assert run.fleet is not None
        report = run.fleet.last_report
        assert report is not None, "run a sharded workload first"

        def view_at(placement):
            if placement is None:
                return None
            server_index, position = placement
            return self._view_content(
                run.fleet[server_index].view_log.views[position]
            )

        return [
            (view_at(sensitive_placement), view_at(cleartext_placement))
            for sensitive_placement, cleartext_placement in report.placements
        ]

    # -- assertions ------------------------------------------------------------
    def assert_degraded_parity(
        self, healthy: StrategyRun, degraded: StrategyRun
    ) -> None:
        """Degraded execution is observationally identical to healthy execution."""
        # the application sees the same rows...
        assert degraded.result_rids == healthy.result_rids
        # ...and the same traces, transfer accounting included (both runs are
        # sharded, so unlike the cross-placement comparison no latency
        # adjustment applies: a replica's round trip costs what the failed
        # primary's would have).
        assert len(degraded.traces) == len(healthy.traces)
        for ours, theirs in zip(degraded.traces, healthy.traces):
            assert ours.query == theirs.query
            assert ours.binned == theirs.binned
            assert ours.sensitive_values_requested == theirs.sensitive_values_requested
            assert (
                ours.non_sensitive_values_requested
                == theirs.non_sensitive_values_requested
            )
            assert ours.encrypted_rows_returned == theirs.encrypted_rows_returned
            assert ours.non_sensitive_rows_returned == theirs.non_sensitive_rows_returned
            assert ours.rows_after_merge == theirs.rows_after_merge
            assert ours.transfer_seconds == pytest.approx(theirs.transfer_seconds)
        # the fleet as a whole observed exactly the same information: every
        # query's two half views exist with identical content (on possibly
        # different members — that is the failover), ...
        assert self.half_view_contents(degraded) == self.half_view_contents(healthy)
        # ...statistics aggregate to the same totals (the crashed member's
        # lost partial work must not be double-counted anywhere), ...
        stat_fields = [
            "queries_served",
            "sensitive_tokens_processed",
            "sensitive_rows_returned",
            "non_sensitive_rows_returned",
            "non_sensitive_probes",
        ]
        if self.use_encrypted_indexes:
            # Indexed paths examine exactly one bin's slice wherever it is
            # served; the linear-scan fallback legitimately scans a replica's
            # (differently sized) whole store instead.
            stat_fields.append("sensitive_rows_scanned")
        assert healthy.fleet is not None and degraded.fleet is not None
        for field_name in stat_fields:
            assert degraded.fleet.aggregate_stat(field_name) == healthy.fleet.aggregate_stat(
                field_name
            ), field_name
        assert degraded.fleet.total_transfer_tuples("download") == (
            healthy.fleet.total_transfer_tuples("download")
        )
        # ...and failover never weakened non-collusion: replica service
        # included, no member ever saw both halves of a request.
        self.assert_no_member_saw_both_halves(degraded)

    @staticmethod
    def assert_no_member_saw_both_halves(run: StrategyRun) -> None:
        assert run.fleet is not None
        for server in run.fleet.servers:
            for view in server.view_log:
                assert not (
                    bool(view.non_sensitive_request) and view.sensitive_request_size > 0
                ), f"{server.name} observed both halves of a request"


@pytest.fixture(scope="session")
def parity_dataset():
    """A general-case dataset (skew forces fake tuples) for parity suites."""
    return generate_partitioned_dataset(
        num_values=24,
        sensitivity_fraction=0.5,
        association_fraction=0.6,
        tuples_per_value=3,
        skew_exponent=1.1,
        seed=9,
    )


@pytest.fixture
def parity_harness(parity_dataset):
    """Factory for :class:`ExecutionParityHarness` over the shared dataset.

    Usage::

        harness = parity_harness(DeterministicScheme, num_shards=4)
        runs = harness.run_all()
        harness.assert_identical_results(runs)
    """

    made: List[ExecutionParityHarness] = []

    def _make(scheme_factory, dataset=None, **kwargs) -> ExecutionParityHarness:
        harness = ExecutionParityHarness(
            dataset if dataset is not None else parity_dataset,
            scheme_factory,
            **kwargs,
        )
        made.append(harness)
        return harness

    yield _make
    for harness in made:
        harness.close()


@pytest.fixture
def fault_harness(parity_dataset):
    """Factory for :class:`FaultInjectionHarness` over the shared dataset.

    Usage::

        harness = fault_harness(DeterministicScheme)
        workload = harness.workload()
        healthy = harness.run("sharded", workload)
        victim, load = harness.busiest_member(healthy, workload)
        degraded = harness.run_with_failure(workload, victim, at_offset=load // 2)
        harness.assert_degraded_parity(healthy, degraded)
    """

    made: List[FaultInjectionHarness] = []

    def _make(scheme_factory, dataset=None, **kwargs) -> FaultInjectionHarness:
        harness = FaultInjectionHarness(
            dataset if dataset is not None else parity_dataset,
            scheme_factory,
            **kwargs,
        )
        made.append(harness)
        return harness

    yield _make
    for harness in made:
        harness.close()
