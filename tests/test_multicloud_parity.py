"""Cross-strategy execution parity: sequential vs batched vs sharded.

The repo's core security claim is that execution strategy is unobservable:
whether the owner serves a workload one request at a time, batched on one
server, or sharded across a non-colluding fleet, every query returns the same
rows and every server records the same adversarial information (or, for the
fleet, a strict *subset* of it — each member sees only one half of every
request).  These tests drive the reusable
:class:`tests.conftest.ExecutionParityHarness` across all four bundled
encrypted-search schemes.
"""

import pytest

from repro.crypto.arx_index import ArxIndexScheme
from repro.crypto.deterministic import DeterministicScheme
from repro.crypto.nondeterministic import NonDeterministicScheme
from repro.crypto.searchable import SSEScheme

SCHEMES = {
    "deterministic": DeterministicScheme,
    "arx-index": ArxIndexScheme,
    "non-deterministic": NonDeterministicScheme,
    "sse": SSEScheme,
}

pytestmark = pytest.mark.multicloud


@pytest.fixture(params=sorted(SCHEMES), ids=sorted(SCHEMES))
def scheme_runs(request, parity_harness):
    """One workload executed under every placement, per scheme."""
    harness = parity_harness(SCHEMES[request.param])
    workload = harness.workload()
    return harness, workload, harness.run_all(workload)


class TestCrossStrategyParity:
    def test_identical_results(self, scheme_runs):
        harness, _workload, runs = scheme_runs
        harness.assert_identical_results(runs)

    def test_identical_traces(self, scheme_runs):
        harness, _workload, runs = scheme_runs
        harness.assert_identical_traces(runs)

    def test_batched_views_and_statistics_identical(self, scheme_runs):
        harness, _workload, runs = scheme_runs
        harness.assert_single_server_parity(runs["sequential"], runs["batched"])

    def test_sharded_views_split_but_information_preserved(self, scheme_runs):
        harness, workload, runs = scheme_runs
        harness.assert_sharded_view_parity(runs["sequential"], runs["sharded"], workload)

    def test_sharded_statistics_aggregate_to_single_server(self, scheme_runs):
        harness, _workload, runs = scheme_runs
        harness.assert_sharded_statistics_parity(runs["sequential"], runs["sharded"])

    def test_no_fleet_member_sees_both_halves(self, scheme_runs):
        """The non-collusion guarantee, asserted on raw logs (not placements)."""
        _harness, _workload, runs = scheme_runs
        fleet = runs["sharded"].fleet
        assert fleet is not None
        for server in fleet.servers:
            assert len(server.view_log) > 0  # the workload touched every member
            for view in server.view_log:
                has_cleartext = bool(view.non_sensitive_request)
                has_tokens = view.sensitive_request_size > 0
                assert not (has_cleartext and has_tokens), (
                    f"{server.name} observed both halves of a request"
                )


class TestShardedAcrossConfigurations:
    """Parity holds regardless of fleet size, policy, or index configuration."""

    @pytest.mark.parametrize("num_shards", [2, 5])
    @pytest.mark.parametrize("shard_policy", ["hash", "range"])
    def test_fleet_shape_is_unobservable(self, parity_harness, num_shards, shard_policy):
        harness = parity_harness(
            DeterministicScheme, num_shards=num_shards, shard_policy=shard_policy
        )
        workload = harness.workload(repeats=1)
        runs = {p: harness.run(p, workload) for p in ("sequential", "sharded")}
        harness.assert_identical_results(runs)
        harness.assert_sharded_view_parity(runs["sequential"], runs["sharded"], workload)
        harness.assert_sharded_statistics_parity(runs["sequential"], runs["sharded"])

    def test_linear_scan_fleet_scans_fewer_rows_per_member(self, parity_harness):
        """Without indexes, sharding still returns identical rows while each
        member only scans its own slice — the work contraction behind the
        qps-vs-server-count benchmark."""
        harness = parity_harness(
            DeterministicScheme, num_shards=3, use_encrypted_indexes=False
        )
        workload = harness.workload(repeats=1)
        runs = {p: harness.run(p, workload) for p in ("sequential", "sharded")}
        harness.assert_identical_results(runs)
        fleet = runs["sharded"].fleet
        stored_total = runs["sequential"].cloud.encrypted_row_count
        assert sum(s.encrypted_row_count for s in fleet.servers) == stored_total
        for server in fleet.servers:
            assert server.encrypted_row_count < stored_total
        # aggregate scanned rows shrink: each request scanned one shard slice
        assert (
            fleet.aggregate_stat("sensitive_rows_scanned")
            < runs["sequential"].cloud.stats.sensitive_rows_scanned
        )

    def test_sharded_insert_stays_queryable_and_consistent(self, parity_harness):
        """Inserts route to the member owning the value's bin; results stay
        identical to the single reference server afterwards."""
        harness = parity_harness(DeterministicScheme)
        engine = harness.make_engine(sharded=True)
        value = next(
            v
            for v in harness.dataset.all_values
            if engine.layout.locate_sensitive(v) is not None
        )
        template = next(iter(engine.partition.sensitive.rows))
        new_values = dict(template.values)
        new_values[engine.attribute] = value
        before_fleet = sum(s.encrypted_row_count for s in engine.multi_cloud.servers)
        engine.insert(new_values, sensitive=True)
        after_fleet = sum(s.encrypted_row_count for s in engine.multi_cloud.servers)
        assert after_fleet == before_fleet + 1
        # the row landed on exactly the member owning its bin
        bin_index = engine.layout.locate_sensitive(value)[0]
        owner_index = engine.shard_router.shard_of_sensitive(bin_index)
        [(rows, _trace)] = engine.execute_workload_with_rows([value], placement="sharded")
        assert any(row[engine.attribute] == value for row in rows)
        reference = engine.query(value)  # single reference server
        assert sorted(r.rid for r in rows) == sorted(r.rid for r in reference)
        assert engine.multi_cloud[owner_index].encrypted_row_count > 0

    def test_plaintext_cache_is_bounded(self, parity_dataset):
        """The owner's per-bin plaintext cache respects its FIFO cap."""
        import random

        from repro.cloud.server import CloudServer
        from repro.core.engine import QueryBinningEngine
        from repro.crypto.primitives import SecretKey

        engine = QueryBinningEngine(
            partition=parity_dataset.partition,
            attribute=parity_dataset.attribute,
            scheme=DeterministicScheme(SecretKey.from_passphrase("cap-key")),
            cloud=CloudServer(),
            rng=random.Random(17),
            plaintext_cache_bins=2,
        ).setup()
        reference = {}
        for value in parity_dataset.all_values:
            reference[value] = sorted(r.rid for r in engine.query(value))
            assert len(engine._decrypted_bin_cache) <= 2
        # evictions never change results
        for value in parity_dataset.all_values:
            assert sorted(r.rid for r in engine.query(value)) == reference[value]

    def test_rebin_resets_fleet_observations_with_reference(self, parity_harness):
        """Re-binning re-outsources everywhere; every store — reference and
        fleet members alike — must restart its observation log, or the
        fleet-vs-reference parity invariants break after the first rebin."""
        from repro.extensions.inserts import IncrementalInserter

        harness = parity_harness(DeterministicScheme)
        engine = harness.make_engine(sharded=True)
        workload = harness.workload(repeats=1)
        engine.execute_workload_with_rows(workload, placement="sharded")
        assert any(len(s.view_log) > 0 for s in engine.multi_cloud.servers)

        IncrementalInserter(engine).rebin()
        assert len(engine.cloud.view_log) == 0
        for server in engine.multi_cloud.servers:
            assert len(server.view_log) == 0
            assert server.stats.queries_served == 0
        # and the rebuilt fleet still answers identically to the reference
        [(rows, _)] = engine.execute_workload_with_rows(
            [workload[0]], placement="sharded"
        )
        reference_rows = engine.query(workload[0])
        assert sorted(r.rid for r in rows) == sorted(r.rid for r in reference_rows)
