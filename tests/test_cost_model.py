"""Tests for the analytical cost model (§V-A) and its paper-level claims."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.model.cost import (
    break_even_alpha,
    cost_crypt,
    cost_plain,
    crossover_gamma,
    eta_full,
    eta_simplified,
    eta_sweep,
)
from repro.model.parameters import CostParameters


class TestCostParameters:
    def test_ratios(self):
        params = CostParameters(
            communication_cost=4e-6, plaintext_cost=1e-5, encrypted_cost=1e-2
        )
        assert params.beta == pytest.approx(1000.0)
        assert params.gamma == pytest.approx(2500.0)

    def test_from_ratios_round_trips(self):
        params = CostParameters.from_ratios(gamma=25000, beta=500, selectivity=0.1)
        assert params.gamma == pytest.approx(25000)
        assert params.beta == pytest.approx(500)
        assert params.rho == pytest.approx(0.1)

    def test_paper_defaults_have_large_gamma(self):
        assert CostParameters.paper_defaults().gamma > 1000

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CostParameters(communication_cost=0, plaintext_cost=1, encrypted_cost=1)
        with pytest.raises(ConfigurationError):
            CostParameters(
                communication_cost=1, plaintext_cost=1, encrypted_cost=1, selectivity=0
            )
        with pytest.raises(ConfigurationError):
            CostParameters.from_ratios(gamma=-1)

    def test_with_selectivity(self):
        params = CostParameters.paper_defaults().with_selectivity(0.25)
        assert params.rho == 0.25


class TestCostFunctions:
    def test_plain_cost_scales_with_probes(self):
        params = CostParameters.paper_defaults()
        assert cost_plain(10, 1000, params) == pytest.approx(10 * cost_plain(1, 1000, params))

    def test_crypt_cost_amortises_probes(self):
        """Encrypted processing is a single scan: extra probes only add
        communication, so doubling probes far less than doubles the cost."""
        params = CostParameters.paper_defaults()
        one = cost_crypt(1, 100_000, params)
        ten = cost_crypt(10, 100_000, params)
        assert ten < 2 * one

    def test_zero_tuples_cost_nothing(self):
        params = CostParameters.paper_defaults()
        assert cost_plain(5, 0, params) == 0.0
        assert cost_crypt(5, 0, params) == 0.0

    def test_crypt_far_more_expensive_than_plain(self):
        params = CostParameters.paper_defaults()
        assert cost_crypt(1, 10_000, params) > 100 * cost_plain(1, 10_000, params)


class TestEta:
    def test_eta_increases_with_alpha(self):
        params = CostParameters.from_ratios(gamma=25000, selectivity=0.1)
        etas = [eta_simplified(alpha, 100, 100, params) for alpha in (0.1, 0.3, 0.6, 0.9)]
        assert etas == sorted(etas)

    def test_eta_decreases_with_gamma(self):
        etas = []
        for gamma in (100, 1000, 10000, 50000):
            params = CostParameters.from_ratios(gamma=gamma, selectivity=0.1)
            etas.append(eta_simplified(0.3, 100, 100, params))
        assert etas == sorted(etas, reverse=True)

    def test_eta_below_one_for_paper_parameters(self):
        """The paper's headline claim: with γ ≈ 25000 QB beats full encryption
        for almost any sensitivity fraction."""
        params = CostParameters.from_ratios(gamma=25000, selectivity=0.1)
        for alpha in (0.01, 0.1, 0.3, 0.6, 0.9):
            assert eta_simplified(alpha, 100, 100, params) < 1.0

    def test_eta_above_one_when_crypto_is_cheap(self):
        """For cheap crypto (small γ) QB's extra communication is not worth it
        — the paper's motivation for not using QB with indexable encryption."""
        params = CostParameters.from_ratios(gamma=5, selectivity=0.1)
        assert eta_simplified(0.9, 100, 100, params) > 1.0

    def test_eta_full_close_to_simplified_for_large_gamma(self):
        params = CostParameters.from_ratios(gamma=25000, beta=1000, selectivity=0.01)
        total = 1_000_000
        alpha = 0.3
        full = eta_full(
            sensitive_tuples=int(total * alpha),
            non_sensitive_tuples=int(total * (1 - alpha)),
            sensitive_bin_width=800,
            non_sensitive_bin_width=800,
            params=params,
        )
        simple = eta_simplified(alpha, 800, 800, params)
        assert full == pytest.approx(simple, rel=0.15)

    def test_eta_simplified_validates_alpha(self):
        params = CostParameters.paper_defaults()
        with pytest.raises(ConfigurationError):
            eta_simplified(1.5, 10, 10, params)

    def test_eta_full_requires_tuples(self):
        with pytest.raises(ConfigurationError):
            eta_full(0, 0, 1, 1, CostParameters.paper_defaults())


class TestBreakEvenAndSweep:
    def test_break_even_close_to_one_for_large_gamma(self):
        params = CostParameters.from_ratios(gamma=25000)
        assert break_even_alpha(1_000_000, params) > 0.99

    def test_break_even_decreases_for_small_gamma(self):
        big = break_even_alpha(10_000, CostParameters.from_ratios(gamma=10000))
        small = break_even_alpha(10_000, CostParameters.from_ratios(gamma=10))
        assert small < big

    def test_crossover_gamma_matches_eta_one(self):
        alpha, ns = 0.6, 40_000
        gamma_star = crossover_gamma(alpha, ns, rho=0.1)
        params = CostParameters.from_ratios(gamma=gamma_star, selectivity=0.1)
        width = int(round(math.sqrt(ns)))
        assert eta_simplified(alpha, width, width, params) == pytest.approx(1.0, rel=0.01)

    def test_crossover_gamma_infinite_for_alpha_one(self):
        assert crossover_gamma(1.0, 100) == math.inf

    def test_eta_sweep_structure(self):
        """Figure 6a: one curve per α, η monotone in γ, ordered by α."""
        gammas = [100, 1000, 10000, 50000]
        alphas = [0.3, 0.6, 0.9, 1.0]
        curves = eta_sweep(gammas, alphas, num_non_sensitive_values=40_000, rho=0.1)
        assert set(curves) == set(alphas)
        for alpha, points in curves.items():
            etas = [eta for _gamma, eta in points]
            assert etas == sorted(etas, reverse=True)
        # at fixed gamma, higher alpha -> higher eta
        at_10k = {alpha: dict(points)[10000] for alpha, points in curves.items()}
        assert at_10k[0.3] < at_10k[0.6] < at_10k[0.9] < at_10k[1.0]

    def test_eta_sweep_alpha_one_stays_above_one(self):
        curves = eta_sweep([1000, 10000], [1.0], num_non_sensitive_values=10_000, rho=0.1)
        assert all(eta >= 1.0 for _g, eta in curves[1.0])
